#include "render/render_engine.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spnerf {
namespace {

/// One (job, tile) work unit; its position in the task list indexes the
/// tile's stat accumulator shard.
struct TileTask {
  std::size_t job = 0;
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
};

struct TileAccum {
  RenderStats stats;
  DecodeCounters counters;
};

// Batch records kept hot per engine. The serving layer bounds concurrent
// batches well below this; past it Acquire falls back to the heap (slower,
// never wrong).
constexpr std::size_t kBatchPoolCapacity = 16;

/// Engine-layer metric handles, resolved once per process.
struct EngineMetrics {
  obs::Counter& batches = obs::MetricsRegistry::Global().GetCounter(
      "render/batches");
  obs::Counter& tiles = obs::MetricsRegistry::Global().GetCounter(
      "render/tiles");
  obs::Histogram& batch_jobs = obs::MetricsRegistry::Global().GetHistogram(
      "render/batch-jobs");
};

EngineMetrics& Metrics() {
  static EngineMetrics metrics;
  return metrics;
}

}  // namespace

/// Everything one in-flight batch owns: the deterministic (job, tile) task
/// list, the per-tile stat shards, the per-job completion latches and the
/// promises the futures hang off. Shared by every thread draining the tile
/// cursor and kept alive (shared_ptr) until the detached region finishes.
struct RenderEngine::BatchState {
  std::vector<RenderJob> jobs;
  std::vector<VolumeRenderer> renderers;   // one per job
  std::vector<TileTask> tasks;             // job-major, row-major tiles
  std::vector<std::size_t> job_first;      // per job: first task index (+end)
  std::vector<TileAccum> shards;           // one per task
  std::vector<Image> images;               // one per job, written by tiles
  std::vector<std::promise<RenderResult>> promises;
  // Per-job completion latches. A raw slab (atomics are not movable, so a
  // vector could never regrow) sized to the largest batch this record ever
  // carried — recycled along with the rest of the record.
  std::unique_ptr<std::atomic<int>[]> tiles_left;
  std::size_t tiles_left_capacity = 0;
  std::atomic<std::size_t> cursor{0};        // next unclaimed task
  std::chrono::steady_clock::time_point issued;
  u64 trace_issue_ns = 0;  // trace-clock issue stamp; 0 = tracing off
  std::mutex error_mutex;
  // First render error per job; delivered through the job's future so a
  // throwing tile never escapes a detached pool worker (std::terminate).
  std::vector<std::exception_ptr> job_errors;

  /// Clears per-batch contents while keeping grown storage (vector
  /// capacities, the latch slab) — the recycling contract of ObjectPool.
  void Reset();
  void RenderTile(std::size_t task_index);
  /// Ordered reduction of the job's shards (shard order == tile enumeration
  /// order, fixed by the image sizes alone) and promise fulfillment. Runs
  /// exactly once per job, on whichever thread finishes its last tile.
  void FinalizeJob(std::size_t job_index);
  /// Claims tiles from the shared cursor until the batch runs dry.
  void DrainTiles();
  /// One future per job, in job order.
  [[nodiscard]] std::vector<std::future<RenderResult>> TakeFutures();
  /// Parallelism seats for this batch on `pool` under the engine's cap.
  [[nodiscard]] unsigned Slots(const ThreadPool& pool, unsigned cap) const {
    return static_cast<unsigned>(
        std::min<std::size_t>(pool.ResolveWorkers(cap), tasks.size()));
  }
};

void RenderEngine::BatchState::Reset() {
  jobs.clear();
  renderers.clear();
  tasks.clear();
  job_first.clear();
  shards.clear();
  images.clear();
  promises.clear();
  job_errors.clear();
  cursor.store(0, std::memory_order_relaxed);
}

std::vector<std::future<RenderResult>> RenderEngine::BatchState::TakeFutures() {
  std::vector<std::future<RenderResult>> futures;
  futures.reserve(promises.size());
  for (std::promise<RenderResult>& p : promises) {
    futures.push_back(p.get_future());
  }
  return futures;
}

void RenderEngine::BatchState::RenderTile(std::size_t task_index) {
  const TileTask& t = tasks[task_index];
  const RenderJob& job = jobs[t.job];
  RenderStats* stats = job.collect_stats ? &shards[task_index].stats : nullptr;
  DecodeCounters* counters =
      job.collect_stats ? &shards[task_index].counters : nullptr;
  Image& img = images[t.job];
  const VolumeRenderer& renderer = renderers[t.job];
  renderer.RenderTile(*job.source, *job.mlp, job.camera, t.x0, t.y0, t.x1,
                      t.y1, img, stats, counters);
}

void RenderEngine::BatchState::FinalizeJob(std::size_t job_index) {
  {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (job_errors[job_index]) {
      promises[job_index].set_exception(job_errors[job_index]);
      return;
    }
  }
  RenderResult result;
  result.image = std::move(images[job_index]);
  if (jobs[job_index].collect_stats) {
    for (std::size_t i = job_first[job_index]; i < job_first[job_index + 1];
         ++i) {
      result.stats.Merge(shards[i].stats);
      result.counters.Merge(shards[i].counters);
    }
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - issued)
                       .count();
  if (trace_issue_ns != 0 && obs::FullTracingEnabled()) {
    // The job's issue-to-finalize span on the engine layer, correlated to
    // the submitting request through the job's flow id.
    obs::TraceEvent ev;
    ev.category = "render";
    ev.name = "render";
    ev.start_ns = trace_issue_ns;
    ev.end_ns = obs::TraceNowNs();
    ev.flow = jobs[job_index].trace_flow;
    ev.AddArg("tiles", static_cast<i64>(job_first[job_index + 1] -
                                        job_first[job_index]));
    obs::Emit(ev);
  }
  promises[job_index].set_value(std::move(result));
}

void RenderEngine::BatchState::DrainTiles() {
  const bool counters = obs::CountersEnabled();
  for (;;) {
    const std::size_t i = cursor.fetch_add(1);
    if (i >= tasks.size()) break;
    const std::size_t j = tasks[i].job;
    if (counters) Metrics().tiles.Add();
    {
      // Scoped so the tile span closes before FinalizeJob's own span opens
      // — keeps per-thread spans properly nested for the Chrome viewer.
      obs::TraceSpan tile_span("render", "tile", jobs[j].trace_flow);
      try {
        RenderTile(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!job_errors[j]) job_errors[j] = std::current_exception();
      }
    }
    // acq_rel: the finalizing thread must see every other thread's shard
    // and pixel writes for this job.
    if (tiles_left[j].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      FinalizeJob(j);
    }
  }
}

RenderEngine::RenderEngine(RenderEngineOptions options) : options_(options) {
  SPNERF_CHECK_MSG(options_.tile_size > 0, "tile size must be positive");
  if (options_.pool == nullptr && options_.max_threads != 0 &&
      options_.max_threads > ThreadPool::Global().WorkerCount()) {
    // Explicit oversubscription: the caller asked for more workers than the
    // global pool detected cores, so give them a pool of that size.
    dedicated_ = std::make_unique<ThreadPool>(options_.max_threads);
  }
  batch_pool_ = std::make_shared<ObjectPool<BatchState>>(kBatchPoolCapacity);
}

// Out-of-line: BatchState is complete only here.
RenderEngine::~RenderEngine() = default;

ThreadPool& RenderEngine::SchedulePool() const {
  if (options_.pool != nullptr) return *options_.pool;
  if (dedicated_ != nullptr) return *dedicated_;
  return ThreadPool::Global();
}

const RenderEngine& RenderEngine::Shared() {
  static const RenderEngine engine;
  return engine;
}

RenderResult RenderEngine::Render(const RenderJob& job) const {
  std::vector<RenderResult> results = RenderBatch({job});
  return std::move(results.front());
}

std::shared_ptr<RenderEngine::BatchState> RenderEngine::PrepareBatch(
    std::vector<RenderJob> jobs) const {
  // Recycle a pooled record: Reset() clears contents but keeps the grown
  // task/shard/latch storage, so a steady-state stream of similar batches
  // stops allocating. The deleter runs on whichever thread drops the last
  // reference (usually the pool worker that finished the batch) — Release
  // is lock-free, so that is safe anywhere, and the captured shared_ptr
  // keeps the slab alive even if the engine is destroyed while the batch
  // is still draining.
  BatchState* raw = batch_pool_->Acquire();
  raw->Reset();
  std::shared_ptr<BatchState> state(
      raw, [pool = batch_pool_](BatchState* s) { pool->Release(s); });
  state->issued = std::chrono::steady_clock::now();
  state->trace_issue_ns = obs::FullTracingEnabled() ? obs::TraceNowNs() : 0;
  state->jobs = std::move(jobs);
  const std::size_t n = state->jobs.size();
  if (obs::CountersEnabled()) {
    Metrics().batches.Add();
    Metrics().batch_jobs.Record(n);
  }
  state->renderers.reserve(n);
  state->images.resize(n);
  state->promises.resize(n);  // fresh promises; the vector keeps capacity
  if (state->tiles_left_capacity < n) {
    state->tiles_left = std::make_unique<std::atomic<int>[]>(n);
    state->tiles_left_capacity = n;
  }
  state->job_errors.resize(n);
  state->job_first.reserve(n + 1);

  // Deterministic tile decomposition: row-major tiles per job, jobs in batch
  // order. Shard indices follow the same enumeration, so every reduction is
  // a fixed-order fold for a given batch regardless of scheduling or what
  // other batches share the pool.
  const int tile = options_.tile_size;
  for (std::size_t j = 0; j < n; ++j) {
    const RenderJob& job = state->jobs[j];
    SPNERF_CHECK_MSG(job.source != nullptr && job.mlp != nullptr,
                     "render job needs a field source and an MLP");
    state->renderers.emplace_back(job.options);
    state->images[j] = Image(job.camera.Width(), job.camera.Height());
    state->job_first.push_back(state->tasks.size());
    for (int y = 0; y < job.camera.Height(); y += tile) {
      for (int x = 0; x < job.camera.Width(); x += tile) {
        TileTask t;
        t.job = j;
        t.x0 = x;
        t.y0 = y;
        t.x1 = std::min(x + tile, job.camera.Width());
        t.y1 = std::min(y + tile, job.camera.Height());
        state->tasks.push_back(t);
      }
    }
    state->tiles_left[j].store(
        static_cast<int>(state->tasks.size() - state->job_first[j]),
        std::memory_order_relaxed);
  }
  state->job_first.push_back(state->tasks.size());
  state->shards.assign(state->tasks.size(), TileAccum{});

  // A job with a zero-area camera has no tiles; its future must still
  // resolve.
  for (std::size_t j = 0; j < n; ++j) {
    if (state->job_first[j] == state->job_first[j + 1]) state->FinalizeJob(j);
  }
  return state;
}

std::vector<std::future<RenderResult>> RenderEngine::SubmitBatch(
    std::vector<RenderJob> jobs) const {
  std::shared_ptr<BatchState> state = PrepareBatch(std::move(jobs));
  std::vector<std::future<RenderResult>> futures = state->TakeFutures();
  if (state->tasks.empty()) return futures;
  ThreadPool& pool = SchedulePool();
  pool.Submit(state->Slots(pool, options_.max_threads),
              [state](unsigned) { state->DrainTiles(); });
  return futures;
}

void RenderEngine::SubmitBatch(
    std::vector<RenderJob> jobs,
    std::function<void(std::vector<std::future<RenderResult>>)> on_complete)
    const {
  std::shared_ptr<BatchState> state = PrepareBatch(std::move(jobs));
  // The harvest runs after every job's promise is fulfilled (the region
  // completes only once all tiles returned), so every delivered future is
  // ready; the callback's own get() calls surface per-job render errors.
  auto futures = std::make_shared<std::vector<std::future<RenderResult>>>(
      state->TakeFutures());
  auto harvest = [futures, callback = std::move(on_complete)]() {
    callback(std::move(*futures));
  };
  if (state->tasks.empty()) {
    harvest();
    return;
  }
  ThreadPool& pool = SchedulePool();
  pool.Submit(state->Slots(pool, options_.max_threads),
              [state](unsigned) { state->DrainTiles(); }, std::move(harvest));
}

std::vector<RenderResult> RenderEngine::RenderBatch(
    const std::vector<RenderJob>& jobs) const {
  std::shared_ptr<BatchState> state = PrepareBatch(jobs);
  std::vector<std::future<RenderResult>> futures = state->TakeFutures();
  if (!state->tasks.empty()) {
    ThreadPool& pool = SchedulePool();
    const unsigned workers = state->Slots(pool, options_.max_threads);
    // The calling thread takes one of the seats and helps drain the tile
    // queue — blocking callers never leave their own core idle — while the
    // remaining seats go to the pool as a detached region.
    if (workers > 1) {
      pool.Submit(workers - 1, [state](unsigned) { state->DrainTiles(); });
    }
    state->DrainTiles();
  }
  std::vector<RenderResult> results;
  results.reserve(futures.size());
  for (std::future<RenderResult>& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace spnerf
