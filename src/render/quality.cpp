#include "render/quality.hpp"

#include <algorithm>
#include <array>

#include "render/volume_renderer.hpp"

namespace spnerf {

namespace {

// Rung table. Cost priors come from rays x samples: rung 1 halves the
// samples per ray (~0.55 with per-ray overhead), rung 2 additionally
// quarters the ray count (~0.2), rung 3 quarters the samples and takes a
// sixteenth of the rays (~0.08). They only seed the governor's cost model;
// observed wall times refine them per scene.
constexpr std::array<RungSpec, kQualityRungCount> kRungs{{
    /*kFull=*/{1.0f, 0.0f, 1, 0, 1.0},
    /*kCoarse=*/{2.0f, 1e-2f, 1, 0, 0.55},
    /*kHalf=*/{2.0f, 1e-2f, 2, 0, 0.2},
    /*kPreview=*/{4.0f, 5e-2f, 4, 2, 0.08},
}};

}  // namespace

const char* QualityRungName(QualityRung rung) {
  switch (rung) {
    case QualityRung::kFull: return "full";
    case QualityRung::kCoarse: return "coarse";
    case QualityRung::kHalf: return "half";
    case QualityRung::kPreview: return "preview";
  }
  return "?";
}

const RungSpec& RungSpecFor(QualityRung rung) {
  const auto i = static_cast<std::size_t>(rung);
  return kRungs[i < kQualityRungCount ? i : 0];
}

RenderOptions ApplyRung(const RenderOptions& base, QualityRung rung) {
  if (rung == QualityRung::kFull) return base;
  const RungSpec& spec = RungSpecFor(rung);
  RenderOptions opt = base;
  opt.step_size = base.step_size * spec.step_scale;
  opt.termination_transmittance = std::max(
      base.termination_transmittance, spec.min_termination_transmittance);
  opt.octree_level_cap = spec.octree_level_cap;
  return opt;
}

}  // namespace spnerf
