// Vectorised wavefront kernels behind the runtime SIMD dispatch
// (common/simd.hpp). Three kernels cover the decode→interpolate→MLP hot
// path the wavefront renderer batches:
//   * spnerf_blend_*   — the deduped corner-vertex blend of
//                        SpNeRFFieldSource::SampleBatch (fp32 + fp16 TIU);
//   * grid_trilinear   — the dense-grid trilinear gather of
//                        GridFieldSource::SampleBatch;
//   * mlp_forward_*    — the blocked Mlp::ForwardBatch / ForwardFp16Batch
//                        GEMM (fp32 + packed-binary16 activations).
//
// Contract: every kernel is BIT-identical to the scalar reference loop it
// replaces (the loops stay in mlp.cpp / field_source.cpp as the oracle).
// Vectorisation is across the sample/lane dimension only, so each sample's
// accumulation chain keeps the exact scalar op order — no FMA contraction,
// no reassociation. The generic implementations live in
// wavefront_kernels_impl.inl and are instantiated once per ISA
// (wavefront_kernels_{avx2,neon}.cpp) against the lane-ops wrappers in
// common/simd_lanes_*.hpp.
#pragma once

#include <array>
#include <cstddef>

#include "common/simd.hpp"
#include "common/types.hpp"
#include "common/vec.hpp"
#include "grid/dense_grid.hpp"
#include "render/field_source.hpp"

namespace spnerf::wavefront {

/// Sentinel in the per-(sample,corner) reference table: corner not decoded
/// (zero or flushed interpolation weight, or sample outside the volume).
inline constexpr u32 kNoVertexRef = 0xffffffffu;

/// Row-major MLP parameters. The fp16 kernels consume the packed binary16
/// copies (wh/bh), which round-trip through Half identically to quantizing
/// the fp32 weights on the fly — see Mlp::PackedHalfWeights.
struct MlpWeightsView {
  const float* w[3] = {nullptr, nullptr, nullptr};
  const float* b[3] = {nullptr, nullptr, nullptr};
  const u16* wh[3] = {nullptr, nullptr, nullptr};
  const u16* bh[3] = {nullptr, nullptr, nullptr};
};

struct MlpBatchArgs {
  MlpWeightsView weights;
  const std::array<float, kMlpInputDim>* in = nullptr;
  Vec3f* out = nullptr;
  std::size_t n = 0;
};

/// Inputs of the grid trilinear gather pass: per-sample base vertex,
/// fractions and inside flag from the (scalar) setup pass, plus the grid's
/// SoA channel arrays. Flattened indices must fit in i32 — the caller
/// checks VoxelCount()*kColorFeatureDim against INT32_MAX and runs the
/// scalar loop for oversized grids.
struct GridTrilinearArgs {
  const Vec3i* base = nullptr;
  const Vec3f* frac = nullptr;
  const u8* inside = nullptr;
  const float* density = nullptr;
  const float* features = nullptr;  // kColorFeatureDim per voxel
  int ny = 0, nz = 0;
  FieldSample* out = nullptr;
  std::size_t n = 0;
};

/// Inputs of the SpNeRF blend pass: the per-(sample,corner) unique-vertex
/// reference table from the dedup pass and the decoded unique-vertex
/// values. refs is sample-major, 8 per sample, kNoVertexRef = skipped.
struct SpnerfBlendArgs {
  const Vec3f* frac = nullptr;
  const u8* inside = nullptr;
  const u32* refs = nullptr;
  const VoxelData* decoded = nullptr;
  FieldSample* out = nullptr;
  std::size_t n = 0;
};

/// One ISA's kernel set. Null table == run the scalar reference.
struct KernelTable {
  const char* name = "scalar";
  void (*mlp_forward_fp32)(const MlpBatchArgs&) = nullptr;
  void (*mlp_forward_fp16)(const MlpBatchArgs&) = nullptr;
  void (*grid_trilinear)(const GridTrilinearArgs&) = nullptr;
  void (*spnerf_blend_fp32)(const SpnerfBlendArgs&) = nullptr;
  void (*spnerf_blend_fp16)(const SpnerfBlendArgs&) = nullptr;
};

/// Kernel table for one path; nullptr when the path has no compiled
/// kernels in this binary (kScalar always returns nullptr — the scalar
/// reference is inline at the call sites, not a table entry).
[[nodiscard]] const KernelTable* ForPath(simd::Path path);

/// Kernel table for the active dispatch path (nullptr => scalar).
[[nodiscard]] const KernelTable* Active();

// Per-ISA tables (nullptr when not compiled for this target).
[[nodiscard]] const KernelTable* Avx2Table();
[[nodiscard]] const KernelTable* NeonTable();

}  // namespace spnerf::wavefront
