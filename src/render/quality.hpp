// Discrete quality ladder for degrade-before-drop serving: ~4 rungs of pure
// execution-cost knobs over the render options. Rung 0 is today's full
// quality — ApplyRung() returns the base options untouched, so the existing
// differential suites remain the bit-identity oracle. Higher rungs trade
// bounded PSNR for large latency wins: coarser march step and earlier ray
// termination (rung 1), half-resolution render + deterministic bilinear
// upsample to the requested size (rung 2), quarter-resolution preview with
// an octree level cap on the empty-space-skipping march (rung 3). Every
// rung is a pure function of the base options — no RNG, no wall clock — so
// a given (request, rung) renders byte-identical pixels on any worker
// count, SIMD path or dispatch mode.
//
// This header is deliberately light (enum + spec table + declarations), so
// the serving stats layer can size per-rung counters without pulling the
// renderer in; quality.cpp owns the RenderOptions-typed definitions.
#pragma once

#include <cstddef>

namespace spnerf {

struct RenderOptions;

/// Ladder rungs, ascending degradation (descending execution cost).
enum class QualityRung : int {
  kFull = 0,     // the unmodified render — bit-identical to no ladder
  kCoarse = 1,   // 2x step, earlier termination
  kHalf = 2,     // rung-1 knobs at half resolution + upsample
  kPreview = 3,  // 4x step at quarter resolution + octree level cap
};

inline constexpr std::size_t kQualityRungCount = 4;

const char* QualityRungName(QualityRung rung);

/// One rung's execution-cost knobs. `cost_scale` is the static prior for
/// the rung's render cost relative to rung 0 (rays x samples-per-ray, with
/// a fixed-overhead allowance); the QualityGovernor seeds a scene's ladder
/// from its first full-quality render via these scales, then refines each
/// rung from observed wall times.
struct RungSpec {
  /// Multiplies RenderOptions::step_size.
  float step_scale = 1.0f;
  /// Floor on RenderOptions::termination_transmittance (the base value wins
  /// when already higher, so a rung never *extends* a march).
  float min_termination_transmittance = 0.0f;
  /// Render at (w/d, h/d) and bilinear-upsample back to (w, h).
  int resolution_divisor = 1;
  /// RenderOptions::octree_level_cap for this rung (0 = leaf-level skip).
  int octree_level_cap = 0;
  /// Static cost prior relative to rung 0.
  double cost_scale = 1.0;
};

[[nodiscard]] const RungSpec& RungSpecFor(QualityRung rung);

[[nodiscard]] inline int RungResolutionDivisor(QualityRung rung) {
  return RungSpecFor(rung).resolution_divisor;
}
[[nodiscard]] inline double RungCostScale(QualityRung rung) {
  return RungSpecFor(rung).cost_scale;
}

/// Image dimension after a rung's resolution divisor (never below 1).
[[nodiscard]] inline int ReducedDim(int full, int divisor) {
  const int d = divisor < 1 ? 1 : divisor;
  const int reduced = full / d;
  return reduced < 1 ? 1 : reduced;
}

/// Applies a rung's knobs to the base options. Rung 0 returns `base`
/// byte-identical (not a single field is touched) — the ladder's
/// full-quality contract.
[[nodiscard]] RenderOptions ApplyRung(const RenderOptions& base,
                                      QualityRung rung);

}  // namespace spnerf
