// Volume rendering with alpha compositing, empty-space skipping and early
// ray termination — the per-frame loop the SpNeRF accelerator executes
// (ray sampling -> online decode -> trilinear interpolation -> MLP ->
// compositing). Rendering statistics feed the hardware workload model.
#pragma once

#include "common/image.hpp"
#include "common/stats.hpp"
#include "grid/occupancy.hpp"
#include "grid/occupancy_octree.hpp"
#include "render/camera.hpp"
#include "render/field_source.hpp"
#include "render/mlp.hpp"
#include "render/skip_mode.hpp"

namespace spnerf {

struct RenderOptions {
  /// Ray-march step in world units ([0,1]^3 scene box). ~half a voxel at
  /// 160^3 resolution.
  float step_size = 0.003f;
  /// Samples whose alpha falls below this skip the MLP (DVGO's
  /// fast_color_thres); their contribution is negligible by construction.
  float alpha_threshold = 2e-3f;
  /// Stop marching when transmittance falls below this.
  float termination_transmittance = 2e-3f;
  /// Composite over this background (Synthetic-NeRF uses white).
  Vec3f background{1.0f, 1.0f, 1.0f};
  /// Use the FP16 systolic-array MLP path.
  bool fp16_mlp = false;
  /// Wavefront (batched) tile marching: per tile, the active rays' next
  /// sample positions are gathered into one FieldSource::SampleBatch call
  /// and the surviving samples shade through one Mlp::ForwardBatch — the
  /// software mirror of the accelerator's decode->TIU->systolic dataflow.
  /// Images, RenderStats and DecodeCounters are bit-identical to the scalar
  /// per-ray path (execution policy, not semantics; excluded from pipeline
  /// keys). Off = the scalar reference path, kept for differential testing.
  bool wavefront = true;
  /// Optional coarse occupancy for empty-space skipping (non-owning). All
  /// compared pipelines use the same skip structure, as DVGO/VQRF do.
  const CoarseOccupancy* coarse_skip = nullptr;
  /// Optional occupancy octree reduced from `coarse_skip` (non-owning).
  /// When attached and SPNF_SKIP resolves to octree (the default), empty
  /// space is skipped through the octree's cached-node DDA path; images,
  /// RenderStats and DecodeCounters stay bit-identical to the flat probe
  /// (execution policy, not semantics; excluded from pipeline keys).
  /// Ignored when `coarse_skip` is null.
  const OccupancyOctree* octree_skip = nullptr;
  /// Degraded-preview skip granularity (quality ladder, render/quality.hpp):
  /// when > 0 and the octree path is active, the empty-space march answers
  /// occupancy this many octree levels ABOVE the leaves — the capped level's
  /// OR-reduced bit is conservative (true whenever any descendant leaf is
  /// occupied), so no occupied sample is ever skipped; empty space is
  /// crossed in capped-level cells, which are 2^cap wider per axis, so a
  /// sparse ray pays far fewer skip iterations. 0 (the default, and rung 0)
  /// is the exact leaf-level chain — bit-identical to no cap. Ignored on
  /// the flat path (SPNF_SKIP=flat has no coarser level to answer from).
  int octree_level_cap = 0;
};

/// Per-frame statistics. `mlp_evals` and the per-ray distributions drive the
/// cycle-level simulator's workload.
struct RenderStats {
  u64 rays = 0;
  u64 steps = 0;           // field samples taken
  u64 coarse_skips = 0;    // supervoxels jumped over without sampling
  u64 mlp_evals = 0;       // samples that passed the alpha threshold
  u64 terminated_rays = 0; // rays stopped by early termination
  u64 missed_rays = 0;     // rays that never hit the scene box
  RunningStats steps_per_ray;
  RunningStats evals_per_ray;

  void Reset() { *this = RenderStats{}; }

  /// Accumulates another shard. Counters merge exactly; the per-ray
  /// distributions merge with Welford's pairwise formula, which is
  /// deterministic for a fixed merge order (the engine always reduces tile
  /// shards in tile order).
  void Merge(const RenderStats& other) {
    rays += other.rays;
    steps += other.steps;
    coarse_skips += other.coarse_skips;
    mlp_evals += other.mlp_evals;
    terminated_rays += other.terminated_rays;
    missed_rays += other.missed_rays;
    steps_per_ray.Merge(other.steps_per_ray);
    evals_per_ray.Merge(other.evals_per_ray);
  }
};

class RenderEngine;

class VolumeRenderer {
 public:
  /// Captures the process-global skip mode (skip::ActiveMode) at
  /// construction — the engine builds one renderer per job, so a job never
  /// changes skip structure mid-render. The octree path engages only when
  /// both skip structures are attached; otherwise the renderer falls back
  /// to the flat probe (or no skipping at all), whatever the mode says.
  explicit VolumeRenderer(RenderOptions options = {})
      : options_(options),
        use_octree_(options.coarse_skip != nullptr &&
                    options.octree_skip != nullptr &&
                    skip::ActiveMode() == skip::Mode::kOctree) {}

  [[nodiscard]] const RenderOptions& Options() const { return options_; }

  /// Renders one view through the tile engine (all workers, with or without
  /// stats). `stats`, when given, accumulates the workload counters of this
  /// view; the totals are identical for any worker count (per-tile shards,
  /// ordered reduction). Schedules on `engine` when given, else on the
  /// process-wide shared engine (RenderEngine::Shared()) — a per-call
  /// engine is never constructed.
  [[nodiscard]] Image Render(const FieldSource& source, const Mlp& mlp,
                             const Camera& camera,
                             RenderStats* stats = nullptr,
                             const RenderEngine* engine = nullptr) const;

  /// Renders one pixel tile [x0,x1) x [y0,y1) of `camera`'s image into
  /// `out` — the unit of work the tile engine schedules. Dispatches to the
  /// wavefront marcher (options().wavefront, the default) or the scalar
  /// per-ray loop; both produce bit-identical pixels, stats and counters.
  /// `stats`/`counters` are this tile's shard accumulators (may be null).
  void RenderTile(const FieldSource& source, const Mlp& mlp,
                  const Camera& camera, int x0, int y0, int x1, int y1,
                  Image& out, RenderStats* stats = nullptr,
                  DecodeCounters* counters = nullptr) const;

  /// Renders a single ray; exposed for tests, the trace generator and the
  /// tile engine. `counters` is the decode-counter shard handed to the
  /// field source (may be null).
  [[nodiscard]] Vec3f RenderRay(const FieldSource& source, const Mlp& mlp,
                                const Ray& ray, RenderStats* stats = nullptr,
                                DecodeCounters* counters = nullptr) const;

 private:
  /// The wavefront marcher behind RenderTile (options().wavefront == true).
  void RenderTileWavefront(const FieldSource& source, const Mlp& mlp,
                           const Camera& camera, int x0, int y0, int x1,
                           int y1, Image& out, RenderStats* stats,
                           DecodeCounters* counters) const;

  RenderOptions options_;
  bool use_octree_ = false;  // skip mode, resolved once at construction
};

namespace render_detail {

/// Forward-progress bump added past every empty-cell exit distance before
/// resuming the march: `t = max(exit_t + kSkipForwardEpsilon, t + step)`.
/// For grazing rays travelling along a cell face — where the exit boundary
/// is the very plane the ray rides on — the bump alone guarantees strictly
/// monotone progress. Shared by the scalar, wavefront and octree-DDA skip
/// paths; it is part of the bit-exactness contract, not a tunable.
inline constexpr float kSkipForwardEpsilon = 1e-5f;

/// Direction components with |d| below this are treated as parallel to the
/// axis: their boundary planes can never be crossed and would divide by
/// ~zero. Shared by every exit-distance computation.
inline constexpr float kDegenerateDirectionEpsilon = 1e-12f;

/// Distance along `ray` at which it exits `cell` (entered at parameter `t`).
/// Always strictly greater than `t`: a degenerate (zero-area) cell, or a ray
/// grazing a face, would otherwise return `t` unchanged and stall the
/// empty-space-skipping march.
float CellExitT(const Ray& ray, const Aabb& cell, float t);

/// CellExitT over coarse cell `cell` of a `dims`-sized grid spanning
/// [0,1]^3, without materialising the cell's Aabb: only the (at most 3)
/// boundary planes the ray can exit through are computed, saving the 6
/// divisions of CoarseOccupancy::CellBounds per empty cell. Bit-identical
/// to `CellExitT(ray, CellBounds(cell), t)` by construction — the boundary
/// expressions, comparison structure and axis order are the same.
float CellExitTDda(const Ray& ray, Vec3i cell, const GridDims& dims, float t);

}  // namespace render_detail

}  // namespace spnerf
