// Volume rendering with alpha compositing, empty-space skipping and early
// ray termination — the per-frame loop the SpNeRF accelerator executes
// (ray sampling -> online decode -> trilinear interpolation -> MLP ->
// compositing). Rendering statistics feed the hardware workload model.
#pragma once

#include "common/image.hpp"
#include "common/stats.hpp"
#include "grid/occupancy.hpp"
#include "render/camera.hpp"
#include "render/field_source.hpp"
#include "render/mlp.hpp"

namespace spnerf {

struct RenderOptions {
  /// Ray-march step in world units ([0,1]^3 scene box). ~half a voxel at
  /// 160^3 resolution.
  float step_size = 0.003f;
  /// Samples whose alpha falls below this skip the MLP (DVGO's
  /// fast_color_thres); their contribution is negligible by construction.
  float alpha_threshold = 2e-3f;
  /// Stop marching when transmittance falls below this.
  float termination_transmittance = 2e-3f;
  /// Composite over this background (Synthetic-NeRF uses white).
  Vec3f background{1.0f, 1.0f, 1.0f};
  /// Use the FP16 systolic-array MLP path.
  bool fp16_mlp = false;
  /// Wavefront (batched) tile marching: per tile, the active rays' next
  /// sample positions are gathered into one FieldSource::SampleBatch call
  /// and the surviving samples shade through one Mlp::ForwardBatch — the
  /// software mirror of the accelerator's decode->TIU->systolic dataflow.
  /// Images, RenderStats and DecodeCounters are bit-identical to the scalar
  /// per-ray path (execution policy, not semantics; excluded from pipeline
  /// keys). Off = the scalar reference path, kept for differential testing.
  bool wavefront = true;
  /// Optional coarse occupancy for empty-space skipping (non-owning). All
  /// compared pipelines use the same skip structure, as DVGO/VQRF do.
  const CoarseOccupancy* coarse_skip = nullptr;
};

/// Per-frame statistics. `mlp_evals` and the per-ray distributions drive the
/// cycle-level simulator's workload.
struct RenderStats {
  u64 rays = 0;
  u64 steps = 0;           // field samples taken
  u64 coarse_skips = 0;    // supervoxels jumped over without sampling
  u64 mlp_evals = 0;       // samples that passed the alpha threshold
  u64 terminated_rays = 0; // rays stopped by early termination
  u64 missed_rays = 0;     // rays that never hit the scene box
  RunningStats steps_per_ray;
  RunningStats evals_per_ray;

  void Reset() { *this = RenderStats{}; }

  /// Accumulates another shard. Counters merge exactly; the per-ray
  /// distributions merge with Welford's pairwise formula, which is
  /// deterministic for a fixed merge order (the engine always reduces tile
  /// shards in tile order).
  void Merge(const RenderStats& other) {
    rays += other.rays;
    steps += other.steps;
    coarse_skips += other.coarse_skips;
    mlp_evals += other.mlp_evals;
    terminated_rays += other.terminated_rays;
    missed_rays += other.missed_rays;
    steps_per_ray.Merge(other.steps_per_ray);
    evals_per_ray.Merge(other.evals_per_ray);
  }
};

class RenderEngine;

class VolumeRenderer {
 public:
  explicit VolumeRenderer(RenderOptions options = {}) : options_(options) {}

  [[nodiscard]] const RenderOptions& Options() const { return options_; }

  /// Renders one view through the tile engine (all workers, with or without
  /// stats). `stats`, when given, accumulates the workload counters of this
  /// view; the totals are identical for any worker count (per-tile shards,
  /// ordered reduction). Schedules on `engine` when given, else on the
  /// process-wide shared engine (RenderEngine::Shared()) — a per-call
  /// engine is never constructed.
  [[nodiscard]] Image Render(const FieldSource& source, const Mlp& mlp,
                             const Camera& camera,
                             RenderStats* stats = nullptr,
                             const RenderEngine* engine = nullptr) const;

  /// Renders one pixel tile [x0,x1) x [y0,y1) of `camera`'s image into
  /// `out` — the unit of work the tile engine schedules. Dispatches to the
  /// wavefront marcher (options().wavefront, the default) or the scalar
  /// per-ray loop; both produce bit-identical pixels, stats and counters.
  /// `stats`/`counters` are this tile's shard accumulators (may be null).
  void RenderTile(const FieldSource& source, const Mlp& mlp,
                  const Camera& camera, int x0, int y0, int x1, int y1,
                  Image& out, RenderStats* stats = nullptr,
                  DecodeCounters* counters = nullptr) const;

  /// Renders a single ray; exposed for tests, the trace generator and the
  /// tile engine. `counters` is the decode-counter shard handed to the
  /// field source (may be null).
  [[nodiscard]] Vec3f RenderRay(const FieldSource& source, const Mlp& mlp,
                                const Ray& ray, RenderStats* stats = nullptr,
                                DecodeCounters* counters = nullptr) const;

 private:
  /// The wavefront marcher behind RenderTile (options().wavefront == true).
  void RenderTileWavefront(const FieldSource& source, const Mlp& mlp,
                           const Camera& camera, int x0, int y0, int x1,
                           int y1, Image& out, RenderStats* stats,
                           DecodeCounters* counters) const;

  RenderOptions options_;
};

namespace render_detail {

/// Distance along `ray` at which it exits `cell` (entered at parameter `t`).
/// Always strictly greater than `t`: a degenerate (zero-area) cell, or a ray
/// grazing a face, would otherwise return `t` unchanged and stall the
/// empty-space-skipping march.
float CellExitT(const Ray& ray, const Aabb& cell, float t);

}  // namespace render_detail

}  // namespace spnerf
