// Volume rendering with alpha compositing, empty-space skipping and early
// ray termination — the per-frame loop the SpNeRF accelerator executes
// (ray sampling -> online decode -> trilinear interpolation -> MLP ->
// compositing). Rendering statistics feed the hardware workload model.
#pragma once

#include "common/image.hpp"
#include "common/stats.hpp"
#include "grid/occupancy.hpp"
#include "render/camera.hpp"
#include "render/field_source.hpp"
#include "render/mlp.hpp"

namespace spnerf {

struct RenderOptions {
  /// Ray-march step in world units ([0,1]^3 scene box). ~half a voxel at
  /// 160^3 resolution.
  float step_size = 0.003f;
  /// Samples whose alpha falls below this skip the MLP (DVGO's
  /// fast_color_thres); their contribution is negligible by construction.
  float alpha_threshold = 2e-3f;
  /// Stop marching when transmittance falls below this.
  float termination_transmittance = 2e-3f;
  /// Composite over this background (Synthetic-NeRF uses white).
  Vec3f background{1.0f, 1.0f, 1.0f};
  /// Use the FP16 systolic-array MLP path.
  bool fp16_mlp = false;
  /// Optional coarse occupancy for empty-space skipping (non-owning). All
  /// compared pipelines use the same skip structure, as DVGO/VQRF do.
  const CoarseOccupancy* coarse_skip = nullptr;
};

/// Per-frame statistics. `mlp_evals` and the per-ray distributions drive the
/// cycle-level simulator's workload.
struct RenderStats {
  u64 rays = 0;
  u64 steps = 0;           // field samples taken
  u64 coarse_skips = 0;    // supervoxels jumped over without sampling
  u64 mlp_evals = 0;       // samples that passed the alpha threshold
  u64 terminated_rays = 0; // rays stopped by early termination
  u64 missed_rays = 0;     // rays that never hit the scene box
  RunningStats steps_per_ray;
  RunningStats evals_per_ray;

  void Reset() { *this = RenderStats{}; }
};

class VolumeRenderer {
 public:
  explicit VolumeRenderer(RenderOptions options = {}) : options_(options) {}

  [[nodiscard]] const RenderOptions& Options() const { return options_; }

  /// Renders one view. `stats`, when given, accumulates workload counters.
  [[nodiscard]] Image Render(const FieldSource& source, const Mlp& mlp,
                             const Camera& camera,
                             RenderStats* stats = nullptr) const;

  /// Renders a single ray; exposed for tests and the trace generator.
  [[nodiscard]] Vec3f RenderRay(const FieldSource& source, const Mlp& mlp,
                                const Ray& ray,
                                RenderStats* stats = nullptr) const;

 private:
  RenderOptions options_;
};

}  // namespace spnerf
