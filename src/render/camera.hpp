// Pinhole camera with look-at pose and ray generation, plus the ring of
// test poses used in place of the Synthetic-NeRF validation cameras.
#pragma once

#include <vector>

#include "common/vec.hpp"

namespace spnerf {

struct Ray {
  Vec3f origin;
  Vec3f direction;  // unit length

  [[nodiscard]] Vec3f At(float t) const { return origin + direction * t; }
};

class Camera {
 public:
  Camera() = default;
  /// `fov_y_deg` is the full vertical field of view.
  Camera(Vec3f position, Vec3f look_at, Vec3f up, float fov_y_deg, int width,
         int height);

  [[nodiscard]] int Width() const { return width_; }
  [[nodiscard]] int Height() const { return height_; }
  [[nodiscard]] Vec3f Position() const { return position_; }
  [[nodiscard]] Vec3f Forward() const { return forward_; }

  /// Ray through pixel center (px + 0.5, py + 0.5).
  [[nodiscard]] Ray PixelRay(int px, int py) const;

 private:
  Vec3f position_;
  Vec3f forward_, right_, up_;
  float tan_half_fov_ = 0.0f;
  int width_ = 0, height_ = 0;
};

/// `count` poses on a circle of radius `radius` around `center` at elevation
/// angle `elevation_deg`, all looking at the center — the standard NeRF
/// validation orbit.
std::vector<Camera> OrbitCameras(int count, Vec3f center, float radius,
                                 float elevation_deg, float fov_y_deg,
                                 int width, int height);

/// Ray / AABB intersection; returns false when the ray misses. On hit,
/// [t_near, t_far] covers the inside segment (t_near clamped to >= 0).
bool IntersectAabb(const Ray& ray, const Aabb& box, float& t_near,
                   float& t_far);

}  // namespace spnerf
