#include "render/skip_mode.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace spnerf::skip {
namespace {

std::atomic<Mode>& ActiveSlot() {
  // First touch resolves the SPNF_SKIP override; the function-local static
  // makes the resolution thread-safe without an explicit once_flag.
  static std::atomic<Mode> active{ResolveOverride(std::getenv("SPNF_SKIP"))};
  return active;
}

}  // namespace

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kFlat: return "flat";
    case Mode::kOctree: return "octree";
  }
  return "octree";
}

bool ParseModeName(std::string_view name, Mode& out) {
  if (name == "flat") {
    out = Mode::kFlat;
    return true;
  }
  if (name == "octree") {
    out = Mode::kOctree;
    return true;
  }
  return false;
}

Mode ResolveOverride(const char* value) {
  if (value == nullptr || value[0] == '\0') return Mode::kOctree;
  Mode requested;
  if (!ParseModeName(value, requested)) {
    std::fprintf(stderr,
                 "[skip] unknown SPNF_SKIP value '%s'; using 'octree'\n",
                 value);
    return Mode::kOctree;
  }
  return requested;
}

Mode ActiveMode() { return ActiveSlot().load(std::memory_order_relaxed); }

Mode SetActiveMode(Mode mode) {
  return ActiveSlot().exchange(mode, std::memory_order_relaxed);
}

}  // namespace spnerf::skip
