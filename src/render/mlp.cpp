#include "render/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/half.hpp"
#include "render/wavefront_kernels.hpp"

namespace spnerf {
namespace {

void InitXavier(std::vector<float>& w, int fan_in, int fan_out, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : w) v = rng.Uniform(-bound, bound);
}

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Mlp Mlp::Random(u64 seed) {
  Mlp mlp;
  Rng rng(seed);
  const int dims[4] = {kMlpInputDim, kMlpHiddenDim, kMlpHiddenDim,
                       kMlpOutputDim};
  for (int layer = 0; layer < 3; ++layer) {
    mlp.w_[layer].resize(static_cast<std::size_t>(dims[layer + 1]) *
                         static_cast<std::size_t>(dims[layer]));
    mlp.b_[layer].assign(static_cast<std::size_t>(dims[layer + 1]), 0.0f);
    InitXavier(mlp.w_[layer], dims[layer], dims[layer + 1], rng);
    for (float& b : mlp.b_[layer]) b = rng.Uniform(-0.05f, 0.05f);
  }
  mlp.PackHalfWeights();
  return mlp;
}

void Mlp::PackHalfWeights() {
  for (int layer = 0; layer < 3; ++layer) {
    wh_[layer].resize(w_[layer].size());
    bh_[layer].resize(b_[layer].size());
    for (std::size_t k = 0; k < w_[layer].size(); ++k) {
      wh_[layer][k] = Half(w_[layer][k]).bits();
    }
    for (std::size_t k = 0; k < b_[layer].size(); ++k) {
      bh_[layer][k] = Half(b_[layer][k]).bits();
    }
  }
}

Vec3f Mlp::Forward(const std::array<float, kMlpInputDim>& in) const {
  SPNERF_CHECK_MSG(!w_[0].empty(), "MLP is uninitialised");
  float h1[kMlpHiddenDim];
  for (int o = 0; o < kMlpHiddenDim; ++o) {
    float acc = b_[0][static_cast<std::size_t>(o)];
    const float* row = &w_[0][static_cast<std::size_t>(o) * kMlpInputDim];
    for (int i = 0; i < kMlpInputDim; ++i) acc += row[i] * in[static_cast<std::size_t>(i)];
    h1[o] = acc > 0.0f ? acc : 0.0f;
  }
  float h2[kMlpHiddenDim];
  for (int o = 0; o < kMlpHiddenDim; ++o) {
    float acc = b_[1][static_cast<std::size_t>(o)];
    const float* row = &w_[1][static_cast<std::size_t>(o) * kMlpHiddenDim];
    for (int i = 0; i < kMlpHiddenDim; ++i) acc += row[i] * h1[i];
    h2[o] = acc > 0.0f ? acc : 0.0f;
  }
  Vec3f rgb;
  for (int o = 0; o < kMlpOutputDim; ++o) {
    float acc = b_[2][static_cast<std::size_t>(o)];
    const float* row = &w_[2][static_cast<std::size_t>(o) * kMlpHiddenDim];
    for (int i = 0; i < kMlpHiddenDim; ++i) acc += row[i] * h2[i];
    rgb[o] = Sigmoid(acc);
  }
  return rgb;
}

Vec3f Mlp::ForwardFp16(const std::array<float, kMlpInputDim>& in) const {
  SPNERF_CHECK_MSG(!w_[0].empty(), "MLP is uninitialised");
  // Inputs, weights and every accumulation step are rounded to binary16,
  // matching an FP16 output-stationary MAC array.
  float h1[kMlpHiddenDim];
  for (int o = 0; o < kMlpHiddenDim; ++o) {
    Half acc(b_[0][static_cast<std::size_t>(o)]);
    const float* row = &w_[0][static_cast<std::size_t>(o) * kMlpInputDim];
    for (int i = 0; i < kMlpInputDim; ++i) {
      acc = Half::Fma(Half(row[i]), Half(in[static_cast<std::size_t>(i)]), acc);
    }
    const float a = acc.ToFloat();
    h1[o] = a > 0.0f ? a : 0.0f;
  }
  float h2[kMlpHiddenDim];
  for (int o = 0; o < kMlpHiddenDim; ++o) {
    Half acc(b_[1][static_cast<std::size_t>(o)]);
    const float* row = &w_[1][static_cast<std::size_t>(o) * kMlpHiddenDim];
    for (int i = 0; i < kMlpHiddenDim; ++i) {
      acc = Half::Fma(Half(row[i]), Half(h1[i]), acc);
    }
    const float a = acc.ToFloat();
    h2[o] = a > 0.0f ? a : 0.0f;
  }
  Vec3f rgb;
  for (int o = 0; o < kMlpOutputDim; ++o) {
    Half acc(b_[2][static_cast<std::size_t>(o)]);
    const float* row = &w_[2][static_cast<std::size_t>(o) * kMlpHiddenDim];
    for (int i = 0; i < kMlpHiddenDim; ++i) {
      acc = Half::Fma(Half(row[i]), Half(h2[i]), acc);
    }
    rgb[o] = Sigmoid(acc.ToFloat());
  }
  return rgb;
}

void Mlp::ForwardBatch(std::span<const std::array<float, kMlpInputDim>> in,
                       std::span<Vec3f> out) const {
  SPNERF_CHECK_MSG(out.size() == in.size(),
                   "ForwardBatch span sizes must match");
  if (in.empty()) return;  // an empty front never touches the weights
  SPNERF_CHECK_MSG(!w_[0].empty(), "MLP is uninitialised");
  if (const wavefront::KernelTable* kt = wavefront::Active();
      kt != nullptr && kt->mlp_forward_fp32 != nullptr) {
    wavefront::MlpBatchArgs args;
    for (int layer = 0; layer < 3; ++layer) {
      args.weights.w[layer] = w_[layer].data();
      args.weights.b[layer] = b_[layer].data();
    }
    args.in = in.data();
    args.out = out.data();
    args.n = in.size();
    kt->mlp_forward_fp32(args);
    return;
  }
  // Scalar reference (also the bit-exactness oracle for the SIMD kernels).
  // Block of samples shaded together: sized so both hidden activations
  // (2 x kBlock x 128 floats = 32 KiB) stay L1/L2-resident while each
  // weight row is reused kBlock times.
  constexpr std::size_t kBlock = 32;
  float h1[kBlock][kMlpHiddenDim];
  float h2[kBlock][kMlpHiddenDim];
  for (std::size_t b0 = 0; b0 < in.size(); b0 += kBlock) {
    const std::size_t m = std::min(kBlock, in.size() - b0);
    for (int o = 0; o < kMlpHiddenDim; ++o) {
      const float bias = b_[0][static_cast<std::size_t>(o)];
      const float* row = &w_[0][static_cast<std::size_t>(o) * kMlpInputDim];
      for (std::size_t s = 0; s < m; ++s) {
        const float* x = in[b0 + s].data();
        float acc = bias;
        for (int i = 0; i < kMlpInputDim; ++i) acc += row[i] * x[i];
        h1[s][o] = acc > 0.0f ? acc : 0.0f;
      }
    }
    for (int o = 0; o < kMlpHiddenDim; ++o) {
      const float bias = b_[1][static_cast<std::size_t>(o)];
      const float* row = &w_[1][static_cast<std::size_t>(o) * kMlpHiddenDim];
      for (std::size_t s = 0; s < m; ++s) {
        float acc = bias;
        for (int i = 0; i < kMlpHiddenDim; ++i) acc += row[i] * h1[s][i];
        h2[s][o] = acc > 0.0f ? acc : 0.0f;
      }
    }
    for (int o = 0; o < kMlpOutputDim; ++o) {
      const float bias = b_[2][static_cast<std::size_t>(o)];
      const float* row = &w_[2][static_cast<std::size_t>(o) * kMlpHiddenDim];
      for (std::size_t s = 0; s < m; ++s) {
        float acc = bias;
        for (int i = 0; i < kMlpHiddenDim; ++i) acc += row[i] * h2[s][i];
        out[b0 + s][o] = Sigmoid(acc);
      }
    }
  }
}

void Mlp::ForwardFp16Batch(std::span<const std::array<float, kMlpInputDim>> in,
                           std::span<Vec3f> out) const {
  SPNERF_CHECK_MSG(out.size() == in.size(),
                   "ForwardBatch span sizes must match");
  if (in.empty()) return;  // an empty front never touches the weights
  SPNERF_CHECK_MSG(!w_[0].empty(), "MLP is uninitialised");
  if (const wavefront::KernelTable* kt = wavefront::Active();
      kt != nullptr && kt->mlp_forward_fp16 != nullptr && !wh_[0].empty()) {
    wavefront::MlpBatchArgs args;
    for (int layer = 0; layer < 3; ++layer) {
      args.weights.w[layer] = w_[layer].data();
      args.weights.b[layer] = b_[layer].data();
      args.weights.wh[layer] = wh_[layer].data();
      args.weights.bh[layer] = bh_[layer].data();
    }
    args.in = in.data();
    args.out = out.data();
    args.n = in.size();
    kt->mlp_forward_fp16(args);
    return;
  }
  constexpr std::size_t kBlock = 32;
  float h1[kBlock][kMlpHiddenDim];
  float h2[kBlock][kMlpHiddenDim];
  for (std::size_t b0 = 0; b0 < in.size(); b0 += kBlock) {
    const std::size_t m = std::min(kBlock, in.size() - b0);
    for (int o = 0; o < kMlpHiddenDim; ++o) {
      const float bias = b_[0][static_cast<std::size_t>(o)];
      const float* row = &w_[0][static_cast<std::size_t>(o) * kMlpInputDim];
      for (std::size_t s = 0; s < m; ++s) {
        const float* x = in[b0 + s].data();
        Half acc(bias);
        for (int i = 0; i < kMlpInputDim; ++i) {
          acc = Half::Fma(Half(row[i]), Half(x[i]), acc);
        }
        const float a = acc.ToFloat();
        h1[s][o] = a > 0.0f ? a : 0.0f;
      }
    }
    for (int o = 0; o < kMlpHiddenDim; ++o) {
      const float bias = b_[1][static_cast<std::size_t>(o)];
      const float* row = &w_[1][static_cast<std::size_t>(o) * kMlpHiddenDim];
      for (std::size_t s = 0; s < m; ++s) {
        Half acc(bias);
        for (int i = 0; i < kMlpHiddenDim; ++i) {
          acc = Half::Fma(Half(row[i]), Half(h1[s][i]), acc);
        }
        const float a = acc.ToFloat();
        h2[s][o] = a > 0.0f ? a : 0.0f;
      }
    }
    for (int o = 0; o < kMlpOutputDim; ++o) {
      const float bias = b_[2][static_cast<std::size_t>(o)];
      const float* row = &w_[2][static_cast<std::size_t>(o) * kMlpHiddenDim];
      for (std::size_t s = 0; s < m; ++s) {
        Half acc(bias);
        for (int i = 0; i < kMlpHiddenDim; ++i) {
          acc = Half::Fma(Half(row[i]), Half(h2[s][i]), acc);
        }
        out[b0 + s][o] = Sigmoid(acc.ToFloat());
      }
    }
  }
}

const std::vector<float>& Mlp::W(int layer) const {
  SPNERF_CHECK(layer >= 0 && layer < 3);
  return w_[layer];
}

const std::vector<float>& Mlp::B(int layer) const {
  SPNERF_CHECK(layer >= 0 && layer < 3);
  return b_[layer];
}

const u16* Mlp::PackedHalfW(int layer) const {
  SPNERF_CHECK(layer >= 0 && layer < 3);
  return wh_[layer].data();
}

const u16* Mlp::PackedHalfB(int layer) const {
  SPNERF_CHECK(layer >= 0 && layer < 3);
  return bh_[layer].data();
}

}  // namespace spnerf
