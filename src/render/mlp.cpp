#include "render/mlp.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/half.hpp"

namespace spnerf {
namespace {

void InitXavier(std::vector<float>& w, int fan_in, int fan_out, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : w) v = rng.Uniform(-bound, bound);
}

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Mlp Mlp::Random(u64 seed) {
  Mlp mlp;
  Rng rng(seed);
  const int dims[4] = {kMlpInputDim, kMlpHiddenDim, kMlpHiddenDim,
                       kMlpOutputDim};
  for (int layer = 0; layer < 3; ++layer) {
    mlp.w_[layer].resize(static_cast<std::size_t>(dims[layer + 1]) *
                         static_cast<std::size_t>(dims[layer]));
    mlp.b_[layer].assign(static_cast<std::size_t>(dims[layer + 1]), 0.0f);
    InitXavier(mlp.w_[layer], dims[layer], dims[layer + 1], rng);
    for (float& b : mlp.b_[layer]) b = rng.Uniform(-0.05f, 0.05f);
  }
  return mlp;
}

Vec3f Mlp::Forward(const std::array<float, kMlpInputDim>& in) const {
  SPNERF_CHECK_MSG(!w_[0].empty(), "MLP is uninitialised");
  float h1[kMlpHiddenDim];
  for (int o = 0; o < kMlpHiddenDim; ++o) {
    float acc = b_[0][static_cast<std::size_t>(o)];
    const float* row = &w_[0][static_cast<std::size_t>(o) * kMlpInputDim];
    for (int i = 0; i < kMlpInputDim; ++i) acc += row[i] * in[static_cast<std::size_t>(i)];
    h1[o] = acc > 0.0f ? acc : 0.0f;
  }
  float h2[kMlpHiddenDim];
  for (int o = 0; o < kMlpHiddenDim; ++o) {
    float acc = b_[1][static_cast<std::size_t>(o)];
    const float* row = &w_[1][static_cast<std::size_t>(o) * kMlpHiddenDim];
    for (int i = 0; i < kMlpHiddenDim; ++i) acc += row[i] * h1[i];
    h2[o] = acc > 0.0f ? acc : 0.0f;
  }
  Vec3f rgb;
  for (int o = 0; o < kMlpOutputDim; ++o) {
    float acc = b_[2][static_cast<std::size_t>(o)];
    const float* row = &w_[2][static_cast<std::size_t>(o) * kMlpHiddenDim];
    for (int i = 0; i < kMlpHiddenDim; ++i) acc += row[i] * h2[i];
    rgb[o] = Sigmoid(acc);
  }
  return rgb;
}

Vec3f Mlp::ForwardFp16(const std::array<float, kMlpInputDim>& in) const {
  SPNERF_CHECK_MSG(!w_[0].empty(), "MLP is uninitialised");
  // Inputs, weights and every accumulation step are rounded to binary16,
  // matching an FP16 output-stationary MAC array.
  float h1[kMlpHiddenDim];
  for (int o = 0; o < kMlpHiddenDim; ++o) {
    Half acc(b_[0][static_cast<std::size_t>(o)]);
    const float* row = &w_[0][static_cast<std::size_t>(o) * kMlpInputDim];
    for (int i = 0; i < kMlpInputDim; ++i) {
      acc = Half::Fma(Half(row[i]), Half(in[static_cast<std::size_t>(i)]), acc);
    }
    const float a = acc.ToFloat();
    h1[o] = a > 0.0f ? a : 0.0f;
  }
  float h2[kMlpHiddenDim];
  for (int o = 0; o < kMlpHiddenDim; ++o) {
    Half acc(b_[1][static_cast<std::size_t>(o)]);
    const float* row = &w_[1][static_cast<std::size_t>(o) * kMlpHiddenDim];
    for (int i = 0; i < kMlpHiddenDim; ++i) {
      acc = Half::Fma(Half(row[i]), Half(h1[i]), acc);
    }
    const float a = acc.ToFloat();
    h2[o] = a > 0.0f ? a : 0.0f;
  }
  Vec3f rgb;
  for (int o = 0; o < kMlpOutputDim; ++o) {
    Half acc(b_[2][static_cast<std::size_t>(o)]);
    const float* row = &w_[2][static_cast<std::size_t>(o) * kMlpHiddenDim];
    for (int i = 0; i < kMlpHiddenDim; ++i) {
      acc = Half::Fma(Half(row[i]), Half(h2[i]), acc);
    }
    rgb[o] = Sigmoid(acc.ToFloat());
  }
  return rgb;
}

const std::vector<float>& Mlp::W(int layer) const {
  SPNERF_CHECK(layer >= 0 && layer < 3);
  return w_[layer];
}

const std::vector<float>& Mlp::B(int layer) const {
  SPNERF_CHECK(layer >= 0 && layer < 3);
  return b_[layer];
}

}  // namespace spnerf
