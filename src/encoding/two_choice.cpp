#include "encoding/two_choice.hpp"

#include "common/error.hpp"

namespace spnerf {
namespace {

u32 UnifiedPayload(const VoxelRecord& rec, int codebook_size) {
  return rec.kept ? static_cast<u32>(codebook_size) + rec.payload_id
                  : rec.payload_id;
}

}  // namespace

TwoChoiceTable::TwoChoiceTable(u32 table_size) : entries_(table_size) {
  SPNERF_CHECK_MSG(table_size > 0, "table size must be positive");
}

bool TwoChoiceTable::Insert(Vec3i position, u32 payload, i8 density_q) {
  SPNERF_CHECK_MSG(payload < TwoChoiceEntry::kEmpty,
                   "payload collides with the empty marker");
  const u8 tag = PointTag(position);
  TwoChoiceEntry& first = entries_[SpatialHash(position, TableSize())];
  if (!first.Occupied()) {
    first = {payload, density_q, tag};
    ++stats_.placed_first;
    return true;
  }
  TwoChoiceEntry& second = entries_[SpatialHash2(position, TableSize())];
  if (!second.Occupied() && &second != &first) {
    second = {payload, density_q, tag};
    ++stats_.placed_second;
    return true;
  }
  ++stats_.dropped;
  return false;
}

const TwoChoiceEntry* TwoChoiceTable::Lookup(Vec3i position) const {
  const u8 tag = PointTag(position);
  const TwoChoiceEntry& first = entries_[SpatialHash(position, TableSize())];
  if (first.Occupied() && first.tag == tag) return &first;
  const TwoChoiceEntry& second =
      entries_[SpatialHash2(position, TableSize())];
  if (second.Occupied() && second.tag == tag) return &second;
  return nullptr;
}

TwoChoiceCodec TwoChoiceCodec::Preprocess(const VqrfModel& vqrf,
                                          int subgrid_count, u32 table_size) {
  SPNERF_CHECK_MSG(subgrid_count > 0, "subgrid_count must be positive");
  TwoChoiceCodec codec;
  codec.dims_ = vqrf.Dims();
  codec.partition_ = SubgridPartition(codec.dims_, subgrid_count);
  codec.tables_.assign(static_cast<std::size_t>(subgrid_count),
                       TwoChoiceTable(table_size));
  codec.source_ = &vqrf;

  const int codebook_size = vqrf.GetCodebook().Size();
  for (const VoxelRecord& rec : vqrf.Records()) {
    const Vec3i p = codec.dims_.Unflatten(rec.index);
    codec.tables_[static_cast<std::size_t>(codec.partition_.SubgridOf(p))]
        .Insert(p, UnifiedPayload(rec, codebook_size), rec.density_q);
  }
  return codec;
}

VoxelData TwoChoiceCodec::Decode(Vec3i position) const {
  SPNERF_CHECK_MSG(source_ != nullptr, "decode on an empty codec");
  if (!dims_.Contains(position)) return {};
  // Bitmap masking, as in the baseline codec.
  if (!source_->OccupancyBitmap().Test(position)) return {};

  const int k = partition_.SubgridOf(position);
  const TwoChoiceEntry* entry =
      tables_[static_cast<std::size_t>(k)].Lookup(position);
  if (entry == nullptr) return {};  // dropped point -> explicit zero

  const VqrfModel& src = *source_;
  VoxelData out;
  out.density = src.DensityQuantizer().Dequantize(entry->density_q);
  const int codebook_size = src.GetCodebook().Size();
  if (entry->payload < static_cast<u32>(codebook_size)) {
    const auto base =
        static_cast<std::size_t>(entry->payload) * kColorFeatureDim;
    for (int c = 0; c < kColorFeatureDim; ++c)
      out.features[c] =
          src.FeatureQuantizer().Dequantize(src.CodebookInt8()[base + c]);
  } else {
    const auto slot = static_cast<std::size_t>(
        entry->payload - static_cast<u32>(codebook_size));
    const auto base = slot * kColorFeatureDim;
    SPNERF_CHECK_MSG(base + kColorFeatureDim <= src.KeptFeatures().size(),
                     "true-grid slot out of range");
    for (int c = 0; c < kColorFeatureDim; ++c)
      out.features[c] =
          src.FeatureQuantizer().Dequantize(src.KeptFeatures()[base + c]);
  }
  return out;
}

TwoChoiceBuildStats TwoChoiceCodec::AggregateBuildStats() const {
  TwoChoiceBuildStats agg;
  for (const auto& t : tables_) {
    agg.placed_first += t.BuildStats().placed_first;
    agg.placed_second += t.BuildStats().placed_second;
    agg.dropped += t.BuildStats().dropped;
  }
  return agg;
}

double TwoChoiceCodec::ErrorRate() const {
  SPNERF_CHECK_MSG(source_ != nullptr, "error rate on an empty codec");
  const int codebook_size = source_->GetCodebook().Size();
  u64 wrong = 0;
  const auto& records = source_->Records();
  for (const VoxelRecord& rec : records) {
    const Vec3i p = dims_.Unflatten(rec.index);
    const TwoChoiceEntry* e =
        tables_[static_cast<std::size_t>(partition_.SubgridOf(p))].Lookup(p);
    if (e == nullptr || e->payload != UnifiedPayload(rec, codebook_size)) {
      ++wrong;
    }
  }
  return records.empty() ? 0.0
                         : static_cast<double>(wrong) /
                               static_cast<double>(records.size());
}

double TwoChoiceCodec::DropRate() const {
  return AggregateBuildStats().DropRate();
}

u64 TwoChoiceCodec::HashTableBytes() const {
  u64 bits = 0;
  for (const auto& t : tables_) bits += t.SizeBits();
  return (bits + 7) / 8;
}

u64 TwoChoiceCodec::TotalBytes() const {
  SPNERF_CHECK_MSG(source_ != nullptr, "size of an empty codec");
  return HashTableBytes() + source_->OccupancyBitmap().SizeBytes() +
         source_->CodebookInt8().size() + source_->KeptFeatures().size() +
         2 * sizeof(float);
}

}  // namespace spnerf
