#include "encoding/hash_table.hpp"

#include "common/error.hpp"

namespace spnerf {

SubgridHashTable::SubgridHashTable(u32 table_size) : entries_(table_size) {
  SPNERF_CHECK_MSG(table_size > 0, "hash table size must be positive");
  SPNERF_CHECK_MSG(table_size <= (1u << 26),
                   "hash table size unreasonably large: " << table_size);
}

SubgridHashTable SubgridHashTable::FromParts(std::vector<HashEntry> entries,
                                             const HashBuildStats& stats) {
  SPNERF_CHECK_MSG(!entries.empty(), "hash table must have entries");
  SPNERF_CHECK_MSG(entries.size() <= (1u << 26),
                   "hash table size unreasonably large: " << entries.size());
  u64 occupied = 0;
  for (const HashEntry& e : entries)
    if (e.Occupied()) ++occupied;
  SPNERF_CHECK_MSG(occupied == stats.occupied_slots,
                   "hash table stats disagree with entries: " << occupied
                       << " occupied slots vs recorded "
                       << stats.occupied_slots);
  SubgridHashTable table;
  table.entries_ = std::move(entries);
  table.stats_ = stats;
  return table;
}

bool SubgridHashTable::Insert(Vec3i position, u32 payload, i8 density_q,
                              CollisionPolicy policy) {
  SPNERF_CHECK_MSG(payload < HashEntry::kEmptyPayload,
                   "payload " << payload << " collides with the empty marker");
  HashEntry& slot = entries_[SpatialHash(position, TableSize())];
  if (!slot.Occupied()) {
    slot.payload = payload;
    slot.density_q = density_q;
    ++stats_.inserted;
    ++stats_.occupied_slots;
    return true;
  }
  ++stats_.collisions;
  if (policy == CollisionPolicy::kOverwrite) {
    slot.payload = payload;
    slot.density_q = density_q;
  }
  return false;
}

}  // namespace spnerf
