// Spatial hash function, Equation (1) of the paper (from instant-ngp):
//   h(p) = (x*pi1 XOR y*pi2 XOR z*pi3) mod T
// with pi1 = 1, pi2 = 2654435761, pi3 = 805459861.
#pragma once

#include "common/types.hpp"
#include "common/vec.hpp"

namespace spnerf {

inline constexpr u32 kHashPi1 = 1u;
inline constexpr u32 kHashPi2 = 2654435761u;
inline constexpr u32 kHashPi3 = 805459861u;

/// Raw 32-bit spatial hash before the table-size modulo.
constexpr u32 SpatialHashRaw(Vec3i p) {
  return (static_cast<u32>(p.x) * kHashPi1) ^
         (static_cast<u32>(p.y) * kHashPi2) ^
         (static_cast<u32>(p.z) * kHashPi3);
}

/// Equation (1): hash index into a table with `table_size` entries.
constexpr u32 SpatialHash(Vec3i p, u32 table_size) {
  return SpatialHashRaw(p) % table_size;
}

}  // namespace spnerf
