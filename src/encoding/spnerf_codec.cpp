#include "encoding/spnerf_codec.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"

namespace spnerf {
namespace {

/// Maps a VQRF record to the unified 18-bit payload index.
u32 UnifiedPayload(const VoxelRecord& rec, int codebook_size) {
  if (rec.kept) {
    return static_cast<u32>(codebook_size) + rec.payload_id;
  }
  return rec.payload_id;
}

}  // namespace

SpNeRFModel SpNeRFModel::Preprocess(const VqrfModel& vqrf,
                                    const SpNeRFParams& params) {
  SPNERF_CHECK_MSG(params.subgrid_count > 0, "subgrid_count must be positive");
  SPNERF_CHECK_MSG(params.table_size > 0, "table_size must be positive");

  SpNeRFModel model;
  model.params_ = params;
  model.dims_ = vqrf.Dims();
  model.partition_ = SubgridPartition(model.dims_, params.subgrid_count);
  model.bitmap_ = vqrf.OccupancyBitmap();
  model.source_ = &vqrf;

  const int codebook_size = vqrf.GetCodebook().Size();
  const u64 max_unified =
      static_cast<u64>(codebook_size) + vqrf.KeptCount();
  SPNERF_CHECK_MSG(max_unified < HashEntry::kEmptyPayload,
                   "unified payload space overflow: codebook "
                       << codebook_size << " + kept " << vqrf.KeptCount());

  model.tables_.assign(static_cast<std::size_t>(params.subgrid_count),
                       SubgridHashTable(params.table_size));

  // Stage 1+2 of preprocessing: records are already the extracted non-zero
  // set P_nz in ascending index order; bucket them by subgrid.
  for (const VoxelRecord& rec : vqrf.Records()) {
    const Vec3i p = model.dims_.Unflatten(rec.index);
    const int k = model.partition_.SubgridOf(p);
    model.tables_[static_cast<std::size_t>(k)].Insert(
        p, UnifiedPayload(rec, codebook_size), rec.density_q,
        params.collision_policy);
  }

  const HashBuildStats agg = model.AggregateBuildStats();
  SPNERF_LOG_DEBUG << "SpNeRF preprocess: K=" << params.subgrid_count
                   << " T=" << params.table_size << " inserted=" << agg.inserted
                   << " collisions=" << agg.collisions << " (rate "
                   << agg.CollisionRate() << ")";
  return model;
}

VoxelData SpNeRFModel::Decode(Vec3i position, bool bitmap_masking,
                              DecodeCounters* counters) const {
  DecodeClass cls;
  const VoxelData out = DecodeClassified(position, bitmap_masking, cls);
  if (counters) counters->AddQueries(cls, 1);
  return out;
}

VoxelData SpNeRFModel::DecodeClassified(Vec3i position, bool bitmap_masking,
                                        DecodeClass& cls) const {
  SPNERF_CHECK_MSG(source_ != nullptr, "decode on an empty SpNeRFModel");

  if (!dims_.Contains(position)) {
    cls = DecodeClass::kBitmapZero;
    return {};
  }

  // 1. Bitmap masking (BLU): zero bit => decoded value is exactly zero.
  if (bitmap_masking && !bitmap_.Test(position)) {
    cls = DecodeClass::kBitmapZero;
    return {};
  }

  // 2. Hash lookup (HMU) in this position's subgrid table.
  const int k = partition_.SubgridOf(position);
  const HashEntry& entry =
      tables_[static_cast<std::size_t>(k)].Lookup(position);
  if (!entry.Occupied()) {
    // Never-written slot: decodes to zero with or without masking.
    cls = DecodeClass::kEmptySlot;
    return {};
  }

  // 3. Unified 18-bit dispatch + 4. de-quantisation.
  const VqrfModel& src = *source_;
  VoxelData out;
  out.density = src.DensityQuantizer().Dequantize(entry.density_q);
  const int codebook_size = src.GetCodebook().Size();
  if (entry.payload < static_cast<u32>(codebook_size)) {
    cls = DecodeClass::kCodebook;
    const auto base =
        static_cast<std::size_t>(entry.payload) * kColorFeatureDim;
    for (int c = 0; c < kColorFeatureDim; ++c)
      out.features[c] =
          src.FeatureQuantizer().Dequantize(src.CodebookInt8()[base + c]);
  } else {
    cls = DecodeClass::kTrueGrid;
    const auto slot = static_cast<std::size_t>(
        entry.payload - static_cast<u32>(codebook_size));
    const auto base = slot * kColorFeatureDim;
    SPNERF_CHECK_MSG(base + kColorFeatureDim <= src.KeptFeatures().size(),
                     "true-grid slot out of range: " << slot);
    for (int c = 0; c < kColorFeatureDim; ++c)
      out.features[c] =
          src.FeatureQuantizer().Dequantize(src.KeptFeatures()[base + c]);
  }
  return out;
}

void SpNeRFModel::DecodeBatch(std::span<const Vec3i> positions,
                              bool bitmap_masking, std::span<VoxelData> out,
                              std::span<DecodeClass> classes) const {
  SPNERF_CHECK_MSG(out.size() == positions.size() &&
                       classes.size() == positions.size(),
                   "DecodeBatch span sizes must match");
  for (std::size_t i = 0; i < positions.size(); ++i) {
    out[i] = DecodeClassified(positions[i], bitmap_masking, classes[i]);
  }
}

HashBuildStats SpNeRFModel::AggregateBuildStats() const {
  HashBuildStats agg;
  for (const auto& table : tables_) {
    const HashBuildStats& s = table.BuildStats();
    agg.inserted += s.inserted;
    agg.collisions += s.collisions;
    agg.occupied_slots += s.occupied_slots;
  }
  return agg;
}

double SpNeRFModel::NonZeroAliasRate() const {
  SPNERF_CHECK_MSG(source_ != nullptr, "alias rate on an empty SpNeRFModel");
  const int codebook_size = source_->GetCodebook().Size();
  u64 aliased = 0;
  const auto& records = source_->Records();
  for (const VoxelRecord& rec : records) {
    const Vec3i p = dims_.Unflatten(rec.index);
    const int k = partition_.SubgridOf(p);
    const HashEntry& entry =
        tables_[static_cast<std::size_t>(k)].Lookup(p);
    if (!entry.Occupied() ||
        entry.payload != UnifiedPayload(rec, codebook_size)) {
      ++aliased;
    }
  }
  return records.empty()
             ? 0.0
             : static_cast<double>(aliased) / static_cast<double>(records.size());
}

u64 SpNeRFModel::HashTableBytes() const {
  u64 bits = 0;
  for (const auto& t : tables_) bits += t.SizeBits();
  return (bits + 7) / 8;
}

u64 SpNeRFModel::BitmapBytes() const { return bitmap_.SizeBytes(); }

u64 SpNeRFModel::CodebookBytes() const {
  return source_ ? source_->CodebookInt8().size() : 0;
}

u64 SpNeRFModel::TrueGridBytes() const {
  return source_ ? source_->KeptFeatures().size() : 0;
}

u64 SpNeRFModel::TotalBytes() const {
  return HashTableBytes() + BitmapBytes() + CodebookBytes() + TrueGridBytes() +
         2 * sizeof(float);  // de-quantisation scales
}

}  // namespace spnerf
