#include "encoding/subgrid.hpp"

#include "common/error.hpp"

namespace spnerf {

SubgridPartition::SubgridPartition(GridDims dims, int subgrid_count)
    : dims_(dims), count_(subgrid_count) {
  SPNERF_CHECK_MSG(subgrid_count > 0, "subgrid count must be positive");
  SPNERF_CHECK_MSG(dims.nx > 0, "grid must be non-empty");
  // ceil so K subgrids always cover [0, nx).
  width_ = (dims.nx + subgrid_count - 1) / subgrid_count;
  if (width_ == 0) width_ = 1;
}

int SubgridPartition::SubgridOfX(int x) const {
  SPNERF_CHECK_MSG(x >= 0 && x < dims_.nx, "x out of grid: " << x);
  const int k = x / width_;
  return k < count_ ? k : count_ - 1;
}

int SubgridPartition::SubgridOf(Vec3i p) const { return SubgridOfX(p.x); }

std::pair<int, int> SubgridPartition::XRange(int k) const {
  SPNERF_CHECK_MSG(k >= 0 && k < count_, "subgrid id out of range: " << k);
  const int first = k * width_;
  int last = (k + 1) * width_ - 1;
  if (k == count_ - 1 || last >= dims_.nx) last = dims_.nx - 1;
  return {first, last};
}

std::vector<std::vector<VoxelIndex>> SubgridPartition::Bucket(
    const std::vector<VoxelIndex>& indices) const {
  std::vector<std::vector<VoxelIndex>> buckets(
      static_cast<std::size_t>(count_));
  for (VoxelIndex idx : indices) {
    const Vec3i p = dims_.Unflatten(idx);
    buckets[static_cast<std::size_t>(SubgridOf(p))].push_back(idx);
  }
  return buckets;
}

}  // namespace spnerf
