// SpNeRF encoded model: the output of the hash-mapping preprocessing step
// (paper III-A) plus the online decoding procedure (paper III-B).
//
// Preprocessing: non-zero voxels of a VQRF model are partitioned into K
// subgrids by x coordinate; each subgrid maps its points into a private
// hash table whose entries carry the 18-bit unified payload index and the
// INT8 density. The full grid is never restored.
//
// Online decode (per voxel vertex):
//   1. bitmap test              — zero bit => zero voxel (masking);
//   2. Eq. (1) hash             — slot in the subgrid's table;
//   3. unified 18-bit dispatch  — payload < 4096: codebook row,
//                                 else: true-voxel-grid slot (payload-4096);
//   4. INT8 -> float de-quantisation with the shared scale.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "encoding/hash_table.hpp"
#include "encoding/subgrid.hpp"
#include "grid/vqrf_model.hpp"

namespace spnerf {

struct SpNeRFParams {
  /// K: number of x-partitioned subgrids (paper's design point: 64).
  int subgrid_count = 64;
  /// T: entries per subgrid hash table (paper's design point: 32k).
  u32 table_size = 32 * 1024;
  /// Bitmap masking on/off (paper Fig 6(b) compares both).
  bool bitmap_masking = true;
  CollisionPolicy collision_policy = CollisionPolicy::kKeepFirst;
};

/// Outcome class of one vertex decode — which unit retired the query. A
/// decode increments exactly one DecodeCounters bucket; batched decode paths
/// record the class per unique vertex and replicate the counter increments
/// per reference, so deduplicated lookups account identically to scalar
/// ones.
enum class DecodeClass : u8 {
  kBitmapZero = 0,  // out of range, or masked out by the bitmap
  kEmptySlot,       // hash slot never written
  kCodebook,        // payload dispatched to the color codebook
  kTrueGrid,        // payload dispatched to the true voxel grid
};

/// Counters accumulated across Decode() calls; mirrors what the SGPU units
/// touch so the cycle simulator and benches can account traffic.
struct DecodeCounters {
  u64 queries = 0;
  u64 bitmap_zero = 0;      // masked out by the bitmap
  u64 empty_slot = 0;       // bitmap said non-zero is off OR slot never filled
  u64 codebook_hits = 0;    // payload dispatched to the color codebook
  u64 true_grid_hits = 0;   // payload dispatched to the true voxel grid

  /// Accumulates another shard; exact (integer) in any merge order, so
  /// per-tile shards reduce to the same totals as a sequential count.
  void Merge(const DecodeCounters& other) {
    queries += other.queries;
    bitmap_zero += other.bitmap_zero;
    empty_slot += other.empty_slot;
    codebook_hits += other.codebook_hits;
    true_grid_hits += other.true_grid_hits;
  }

  /// Accounts `n` decode queries that all retired with outcome `cls` — the
  /// batched-decode equivalent of `n` scalar Decode() calls hitting the same
  /// vertex. Integer adds, so replicated references reduce to exactly the
  /// scalar totals in any order.
  void AddQueries(DecodeClass cls, u64 n) {
    queries += n;
    switch (cls) {
      case DecodeClass::kBitmapZero: bitmap_zero += n; break;
      case DecodeClass::kEmptySlot: empty_slot += n; break;
      case DecodeClass::kCodebook: codebook_hits += n; break;
      case DecodeClass::kTrueGrid: true_grid_hits += n; break;
    }
  }
};

class SpNeRFModel {
 public:
  SpNeRFModel() = default;

  /// The preprocessing step. Throws if kept voxels overflow the 18-bit
  /// unified space.
  static SpNeRFModel Preprocess(const VqrfModel& vqrf,
                                const SpNeRFParams& params);

  [[nodiscard]] const SpNeRFParams& Params() const { return params_; }
  [[nodiscard]] const GridDims& Dims() const { return dims_; }
  [[nodiscard]] const SubgridPartition& Partition() const { return partition_; }
  [[nodiscard]] const std::vector<SubgridHashTable>& Tables() const {
    return tables_;
  }
  [[nodiscard]] const BitGrid& Bitmap() const { return bitmap_; }
  [[nodiscard]] const VqrfModel& Source() const { return *source_; }

  /// Online decode of one voxel vertex. Out-of-range positions decode to
  /// zero. `counters`, when provided, accumulates unit activity.
  [[nodiscard]] VoxelData Decode(Vec3i position,
                                 DecodeCounters* counters = nullptr) const {
    return Decode(position, params_.bitmap_masking, counters);
  }

  /// Decode with an explicit masking setting (Fig 6(b) compares the same
  /// tables with masking on and off).
  [[nodiscard]] VoxelData Decode(Vec3i position, bool bitmap_masking,
                                 DecodeCounters* counters) const;

  /// Classified decode of one vertex: same payload bytes as Decode(), plus
  /// the outcome class instead of counter side effects. The batched vertex
  /// decode records the class per unique vertex so callers can replicate
  /// DecodeCounters per reference (see DecodeCounters::AddQueries).
  [[nodiscard]] VoxelData DecodeClassified(Vec3i position, bool bitmap_masking,
                                           DecodeClass& cls) const;

  /// Batched vertex decode: the wavefront's decode stage. `positions` is the
  /// deduplicated vertex list of one sample front (each shared corner of
  /// adjacent samples appears once); every vertex runs bitmap -> hash ->
  /// unified 18-bit dispatch exactly as a scalar Decode() would, writing its
  /// payload to `out[i]` and its outcome class to `classes[i]`. Counters are
  /// the caller's job: one AddQueries per (sample, corner) reference keeps
  /// DecodeCounters bit-identical to the scalar path while the table is
  /// touched only once per unique vertex.
  void DecodeBatch(std::span<const Vec3i> positions, bool bitmap_masking,
                   std::span<VoxelData> out,
                   std::span<DecodeClass> classes) const;

  /// Aggregate build-time collision statistics over all subgrid tables.
  [[nodiscard]] HashBuildStats AggregateBuildStats() const;

  /// Fraction of non-zero voxels whose decode returns the wrong payload
  /// (they lost their hash slot to another non-zero point). This is the
  /// residual error bitmap masking cannot remove.
  [[nodiscard]] double NonZeroAliasRate() const;

  // --- Memory accounting (Fig 6(a)) ------------------------------------
  /// Hash tables: K * T * (18 + 8) bits.
  [[nodiscard]] u64 HashTableBytes() const;
  /// Occupancy bitmap: 1 bit per voxel.
  [[nodiscard]] u64 BitmapBytes() const;
  /// Color codebook, INT8.
  [[nodiscard]] u64 CodebookBytes() const;
  /// True voxel grid (kept features), INT8.
  [[nodiscard]] u64 TrueGridBytes() const;
  /// Everything SpNeRF keeps for rendering (the Fig 6(a) numerator).
  [[nodiscard]] u64 TotalBytes() const;

 private:
  friend void SaveSpNeRFModel(const SpNeRFModel&, std::ostream&);
  friend SpNeRFModel LoadSpNeRFModel(std::istream&, const VqrfModel&);

  SpNeRFParams params_;
  GridDims dims_;
  SubgridPartition partition_;
  std::vector<SubgridHashTable> tables_;
  BitGrid bitmap_;
  const VqrfModel* source_ = nullptr;  // non-owning; payload stores live here
};

}  // namespace spnerf
