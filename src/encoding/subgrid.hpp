// Voxel-grid partitioning into K subgrids along the x axis (paper III-A):
//   S_k = { p_i | floor(x_i / w) = k },  k in [0, K)
// where w is the subgrid width. Each subgrid gets its own hash table, which
// bounds per-table load and lets the hardware hold one subgrid's bitmap and
// table slice on chip at a time.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "common/vec.hpp"
#include "grid/dense_grid.hpp"

namespace spnerf {

class SubgridPartition {
 public:
  SubgridPartition() = default;
  SubgridPartition(GridDims dims, int subgrid_count);

  [[nodiscard]] int SubgridCount() const { return count_; }
  [[nodiscard]] int Width() const { return width_; }
  [[nodiscard]] const GridDims& Dims() const { return dims_; }

  /// Subgrid id of a voxel position: floor(x / w), clamped to [0, K).
  [[nodiscard]] int SubgridOf(Vec3i p) const;
  [[nodiscard]] int SubgridOfX(int x) const;

  /// The x-range [first, last] covered by subgrid k (last inclusive; the
  /// final subgrid may be narrower than `w`).
  [[nodiscard]] std::pair<int, int> XRange(int k) const;

  /// Buckets voxel indices by subgrid. Input must be flattened indices of
  /// `dims`; output has exactly SubgridCount() buckets, order-preserving.
  [[nodiscard]] std::vector<std::vector<VoxelIndex>> Bucket(
      const std::vector<VoxelIndex>& indices) const;

 private:
  GridDims dims_;
  int count_ = 0;
  int width_ = 0;
};

}  // namespace spnerf
