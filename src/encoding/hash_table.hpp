// Per-subgrid spatial hash table (paper III-A). Each entry stores the 18-bit
// unified payload index (codebook row if < 4096, else true-voxel-grid slot)
// plus the voxel's INT8 density — this pair is what the hardware Index and
// Density Buffer holds. There is no stored key and no probing: a collision
// simply leaves one point's data in the slot, and queries of the losing
// point read the winner's payload. Bitmap masking (outside this class)
// removes the zero-point side of that error.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "common/vec.hpp"
#include "encoding/hash.hpp"

namespace spnerf {

/// What a hash-table slot holds. `kEmptyPayload` marks never-written slots.
struct HashEntry {
  u32 payload = kEmptyPayload;  // 18-bit unified index
  i8 density_q = 0;

  static constexpr u32 kEmptyPayload = kUnifiedIndexSpace - 1;
  [[nodiscard]] bool Occupied() const { return payload != kEmptyPayload; }
};

/// How insertion resolves two non-zero points hashing to one slot.
enum class CollisionPolicy {
  kKeepFirst,  // first inserted point wins (deterministic for sorted input)
  kOverwrite,  // last inserted point wins
};

struct HashBuildStats {
  u64 inserted = 0;    // points that own a slot
  u64 collisions = 0;  // points that lost their slot to another point
  u64 occupied_slots = 0;

  [[nodiscard]] double CollisionRate() const {
    const u64 total = inserted + collisions;
    return total ? static_cast<double>(collisions) / static_cast<double>(total)
                 : 0.0;
  }
};

class SubgridHashTable {
 public:
  SubgridHashTable() = default;
  explicit SubgridHashTable(u32 table_size);

  /// Reconstructs a table from its slots and build statistics — the
  /// deserialization path; `Insert` remains the only way to populate one.
  static SubgridHashTable FromParts(std::vector<HashEntry> entries,
                                    const HashBuildStats& stats);

  [[nodiscard]] u32 TableSize() const {
    return static_cast<u32>(entries_.size());
  }

  /// Inserts a point's payload. Returns false when the slot was already
  /// owned and the policy kept the incumbent (a build-time collision).
  bool Insert(Vec3i position, u32 payload, i8 density_q,
              CollisionPolicy policy);

  /// Hash lookup: returns whatever occupies the point's slot. The caller
  /// cannot tell a correct hit from a collision alias — exactly the
  /// hardware's behaviour.
  [[nodiscard]] const HashEntry& Lookup(Vec3i position) const {
    return entries_[SpatialHash(position, TableSize())];
  }

  [[nodiscard]] const HashEntry& EntryAt(u32 slot) const {
    return entries_[slot];
  }

  [[nodiscard]] const std::vector<HashEntry>& Entries() const {
    return entries_;
  }

  [[nodiscard]] const HashBuildStats& BuildStats() const { return stats_; }

  /// Storage in bits: (18-bit payload + 8-bit density) per entry. The paper
  /// counts packed widths, not host-struct sizes.
  [[nodiscard]] u64 SizeBits() const {
    return static_cast<u64>(entries_.size()) * (kUnifiedIndexBits + 8);
  }
  [[nodiscard]] u64 SizeBytes() const { return (SizeBits() + 7) / 8; }

 private:
  std::vector<HashEntry> entries_;
  HashBuildStats stats_;
};

}  // namespace spnerf
