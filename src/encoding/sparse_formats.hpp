// Baseline sparse encodings (paper II-B): COO, CSR and CSC over the
// non-zero voxel set. The paper rejects these because coordinate storage is
// expensive (COO: ~630 KB extra per scene) and irregular, per-sample lookups
// need many probes. We implement all three with exact memory accounting and
// probe counting so the benches can reproduce that argument quantitatively.
//
// The 3-D grid is viewed as a 2-D sparse matrix: row = x*ny + y, col = z.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "common/vec.hpp"
#include "grid/vqrf_model.hpp"

namespace spnerf {

/// Payload stored per non-zero element in every baseline format: the 18-bit
/// unified index plus INT8 density (same as a hash-table entry).
struct SparsePayload {
  u32 payload = 0;
  i8 density_q = 0;
};

/// Result of a baseline lookup: the payload (when the position is non-zero)
/// and the number of sequential memory probes the lookup needed.
struct LookupResult {
  std::optional<SparsePayload> value;
  u32 probes = 0;
};

/// Coordinate format: per element (x, y, z) as 16-bit each + payload.
class CooGrid {
 public:
  static CooGrid Build(const VqrfModel& vqrf);

  [[nodiscard]] u64 ElementCount() const { return coords_.size(); }
  [[nodiscard]] LookupResult Lookup(Vec3i p) const;  // binary search

  /// Coordinate overhead alone (the paper's "extra 630 KB" number):
  /// 3 x 16-bit per element.
  [[nodiscard]] u64 CoordinateBytes() const { return coords_.size() * 6; }
  /// Payload storage: 18-bit + 8-bit per element, bit-packed.
  [[nodiscard]] u64 PayloadBytes() const {
    return (payloads_.size() * (kUnifiedIndexBits + 8) + 7) / 8;
  }
  [[nodiscard]] u64 TotalBytes() const {
    return CoordinateBytes() + PayloadBytes();
  }

 private:
  struct Coord16 {
    u16 x, y, z;
  };
  GridDims dims_;
  std::vector<Coord16> coords_;  // sorted by flattened index
  std::vector<SparsePayload> payloads_;
};

/// Compressed sparse row: rows = x*ny + y, cols = z.
class CsrGrid {
 public:
  static CsrGrid Build(const VqrfModel& vqrf);

  [[nodiscard]] u64 ElementCount() const { return cols_.size(); }
  /// Row-direction lookup: row pointer + binary search within the row.
  [[nodiscard]] LookupResult Lookup(Vec3i p) const;

  [[nodiscard]] u64 RowPtrBytes() const {
    return (row_ptr_.size()) * sizeof(u32);
  }
  [[nodiscard]] u64 ColIndexBytes() const { return cols_.size() * sizeof(u16); }
  [[nodiscard]] u64 PayloadBytes() const {
    return (payloads_.size() * (kUnifiedIndexBits + 8) + 7) / 8;
  }
  [[nodiscard]] u64 TotalBytes() const {
    return RowPtrBytes() + ColIndexBytes() + PayloadBytes();
  }

 private:
  GridDims dims_;
  std::vector<u32> row_ptr_;  // (nx*ny + 1) entries
  std::vector<u16> cols_;     // z coordinate per element
  std::vector<SparsePayload> payloads_;
};

/// Compressed sparse column: cols = z, rows = x*ny + y. Lookup along a
/// column must scan/binary-search the whole column — the paper's "struggles
/// with row-wise access" cost made explicit.
class CscGrid {
 public:
  static CscGrid Build(const VqrfModel& vqrf);

  [[nodiscard]] u64 ElementCount() const { return rows_.size(); }
  [[nodiscard]] LookupResult Lookup(Vec3i p) const;

  [[nodiscard]] u64 ColPtrBytes() const {
    return (col_ptr_.size()) * sizeof(u32);
  }
  [[nodiscard]] u64 RowIndexBytes() const { return rows_.size() * sizeof(u32); }
  [[nodiscard]] u64 PayloadBytes() const {
    return (payloads_.size() * (kUnifiedIndexBits + 8) + 7) / 8;
  }
  [[nodiscard]] u64 TotalBytes() const {
    return ColPtrBytes() + RowIndexBytes() + PayloadBytes();
  }

 private:
  GridDims dims_;
  std::vector<u32> col_ptr_;  // (nz + 1) entries
  std::vector<u32> rows_;     // x*ny + y per element
  std::vector<SparsePayload> payloads_;
};

}  // namespace spnerf
