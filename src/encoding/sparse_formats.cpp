#include "encoding/sparse_formats.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace spnerf {
namespace {

u32 Unified(const VoxelRecord& rec, int codebook_size) {
  return rec.kept ? static_cast<u32>(codebook_size) + rec.payload_id
                  : rec.payload_id;
}

}  // namespace

// ---------------------------------------------------------------- COO ----

CooGrid CooGrid::Build(const VqrfModel& vqrf) {
  CooGrid g;
  g.dims_ = vqrf.Dims();
  SPNERF_CHECK_MSG(g.dims_.nx <= 65536 && g.dims_.ny <= 65536 &&
                       g.dims_.nz <= 65536,
                   "COO 16-bit coordinates overflow");
  const int cb = vqrf.GetCodebook().Size();
  g.coords_.reserve(vqrf.Records().size());
  g.payloads_.reserve(vqrf.Records().size());
  for (const VoxelRecord& rec : vqrf.Records()) {  // already index-ascending
    const Vec3i p = g.dims_.Unflatten(rec.index);
    g.coords_.push_back({static_cast<u16>(p.x), static_cast<u16>(p.y),
                         static_cast<u16>(p.z)});
    g.payloads_.push_back({Unified(rec, cb), rec.density_q});
  }
  return g;
}

LookupResult CooGrid::Lookup(Vec3i p) const {
  LookupResult r;
  if (!dims_.Contains(p)) return r;
  const VoxelIndex target = dims_.Flatten(p);
  // Binary search over the sorted coordinate list; every midpoint read is a
  // memory probe.
  std::size_t lo = 0, hi = coords_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ++r.probes;
    const Coord16& c = coords_[mid];
    const VoxelIndex idx = dims_.Flatten({c.x, c.y, c.z});
    if (idx == target) {
      r.value = payloads_[mid];
      ++r.probes;  // payload fetch
      return r;
    }
    if (idx < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return r;
}

// ---------------------------------------------------------------- CSR ----

CsrGrid CsrGrid::Build(const VqrfModel& vqrf) {
  CsrGrid g;
  g.dims_ = vqrf.Dims();
  SPNERF_CHECK_MSG(g.dims_.nz <= 65536, "CSR 16-bit column index overflow");
  const int cb = vqrf.GetCodebook().Size();
  const u64 rows = static_cast<u64>(g.dims_.nx) * g.dims_.ny;
  g.row_ptr_.assign(rows + 1, 0);
  // Records are index-ascending and Flatten is (x*ny + y)*nz + z, so they are
  // already grouped by row with ascending z.
  for (const VoxelRecord& rec : vqrf.Records()) {
    const Vec3i p = g.dims_.Unflatten(rec.index);
    const u64 row = static_cast<u64>(p.x) * g.dims_.ny + p.y;
    ++g.row_ptr_[row + 1];
    g.cols_.push_back(static_cast<u16>(p.z));
    g.payloads_.push_back({Unified(rec, cb), rec.density_q});
  }
  for (std::size_t r = 1; r < g.row_ptr_.size(); ++r)
    g.row_ptr_[r] += g.row_ptr_[r - 1];
  return g;
}

LookupResult CsrGrid::Lookup(Vec3i p) const {
  LookupResult r;
  if (!dims_.Contains(p)) return r;
  const u64 row = static_cast<u64>(p.x) * dims_.ny + p.y;
  ++r.probes;  // row_ptr[row] fetch (row_ptr[row+1] shares the line)
  u32 lo = row_ptr_[row], hi = row_ptr_[row + 1];
  while (lo < hi) {
    const u32 mid = lo + (hi - lo) / 2;
    ++r.probes;
    const u16 col = cols_[mid];
    if (col == static_cast<u16>(p.z)) {
      r.value = payloads_[mid];
      ++r.probes;  // payload fetch
      return r;
    }
    if (col < static_cast<u16>(p.z)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return r;
}

// ---------------------------------------------------------------- CSC ----

CscGrid CscGrid::Build(const VqrfModel& vqrf) {
  CscGrid g;
  g.dims_ = vqrf.Dims();
  const int cb = vqrf.GetCodebook().Size();
  const u64 cols = static_cast<u64>(g.dims_.nz);
  g.col_ptr_.assign(cols + 1, 0);

  // Count per column, then scatter (classic two-pass CSC construction).
  std::vector<u32> counts(cols, 0);
  for (const VoxelRecord& rec : vqrf.Records()) {
    const Vec3i p = g.dims_.Unflatten(rec.index);
    ++counts[static_cast<std::size_t>(p.z)];
  }
  for (u64 c = 0; c < cols; ++c) g.col_ptr_[c + 1] = g.col_ptr_[c] + counts[c];
  g.rows_.resize(vqrf.Records().size());
  g.payloads_.resize(vqrf.Records().size());
  std::vector<u32> cursor(g.col_ptr_.begin(), g.col_ptr_.end() - 1);
  for (const VoxelRecord& rec : vqrf.Records()) {
    const Vec3i p = g.dims_.Unflatten(rec.index);
    const u32 at = cursor[static_cast<std::size_t>(p.z)]++;
    g.rows_[at] = static_cast<u32>(static_cast<u64>(p.x) * g.dims_.ny + p.y);
    g.payloads_[at] = {Unified(rec, cb), rec.density_q};
  }
  return g;
}

LookupResult CscGrid::Lookup(Vec3i p) const {
  LookupResult r;
  if (!dims_.Contains(p)) return r;
  ++r.probes;  // col_ptr fetch
  u32 lo = col_ptr_[static_cast<std::size_t>(p.z)];
  u32 hi = col_ptr_[static_cast<std::size_t>(p.z) + 1];
  const u32 want = static_cast<u32>(static_cast<u64>(p.x) * dims_.ny + p.y);
  // Row ids within one column are ascending (records inserted in ascending
  // flattened order), so binary search applies.
  while (lo < hi) {
    const u32 mid = lo + (hi - lo) / 2;
    ++r.probes;
    if (rows_[mid] == want) {
      r.value = payloads_[mid];
      ++r.probes;
      return r;
    }
    if (rows_[mid] < want) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return r;
}

}  // namespace spnerf
