// Extension beyond the paper: two-choice hashing with short tags.
//
// The paper's single-probe table silently aliases when two non-zero points
// collide — the residual PSNR loss that bitmap masking cannot remove
// (Fig 6(b)/Fig 7). This variant gives every point two candidate slots
// (independent spatial hashes) and stores a 6-bit tag derived from the
// point's raw hash:
//   * insertion takes the first empty candidate; if both are taken the
//     point is dropped (decodes to zero — a visible but unbiased error);
//   * lookup probes both candidates and accepts the one whose tag matches.
//
// Cost: 32 bits/entry instead of 26, and up to two probes per lookup
// (trivially pipelined in an HMU with a second hash unit). Benefit: silent
// wrong-payload aliases become either correct hits or explicit dropouts,
// and only a tag collision (~1/64 per conflicting pair) can still alias.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "encoding/hash.hpp"
#include "encoding/subgrid.hpp"
#include "grid/vqrf_model.hpp"

namespace spnerf {

/// Second independent spatial hash (primes permuted relative to Eq. 1).
constexpr u32 SpatialHash2Raw(Vec3i p) {
  return (static_cast<u32>(p.x) * kHashPi2) ^
         (static_cast<u32>(p.y) * kHashPi3) ^
         (static_cast<u32>(p.z) * 0x9e3779b1u);
}
constexpr u32 SpatialHash2(Vec3i p, u32 table_size) {
  return SpatialHash2Raw(p) % table_size;
}

/// 6-bit discriminating tag from the primary raw hash's high bits.
constexpr u8 PointTag(Vec3i p) {
  return static_cast<u8>(SpatialHashRaw(p) >> 26);
}

struct TwoChoiceEntry {
  u32 payload = kEmpty;
  i8 density_q = 0;
  u8 tag = 0;

  static constexpr u32 kEmpty = kUnifiedIndexSpace - 1;
  [[nodiscard]] bool Occupied() const { return payload != kEmpty; }
};

struct TwoChoiceBuildStats {
  u64 placed_first = 0;   // stored in the h1 slot
  u64 placed_second = 0;  // stored in the h2 slot
  u64 dropped = 0;        // both candidates taken

  [[nodiscard]] u64 Total() const {
    return placed_first + placed_second + dropped;
  }
  [[nodiscard]] double DropRate() const {
    return Total() ? static_cast<double>(dropped) /
                         static_cast<double>(Total())
                   : 0.0;
  }
};

class TwoChoiceTable {
 public:
  TwoChoiceTable() = default;
  explicit TwoChoiceTable(u32 table_size);

  [[nodiscard]] u32 TableSize() const {
    return static_cast<u32>(entries_.size());
  }

  /// Returns false when the point was dropped (both candidates occupied).
  bool Insert(Vec3i position, u32 payload, i8 density_q);

  /// Tag-checked lookup: the matching candidate, or nullptr when neither
  /// tag matches (the point is absent or was dropped).
  [[nodiscard]] const TwoChoiceEntry* Lookup(Vec3i position) const;

  [[nodiscard]] const TwoChoiceBuildStats& BuildStats() const { return stats_; }

  /// 18-bit payload + 8-bit density + 6-bit tag per entry.
  [[nodiscard]] u64 SizeBits() const {
    return static_cast<u64>(entries_.size()) * (kUnifiedIndexBits + 8 + 6);
  }

 private:
  std::vector<TwoChoiceEntry> entries_;
  TwoChoiceBuildStats stats_;
};

/// SpNeRF codec with two-choice tables (bitmap masking always on).
class TwoChoiceCodec {
 public:
  TwoChoiceCodec() = default;

  static TwoChoiceCodec Preprocess(const VqrfModel& vqrf, int subgrid_count,
                                   u32 table_size);

  [[nodiscard]] const GridDims& Dims() const { return dims_; }
  [[nodiscard]] VoxelData Decode(Vec3i position) const;

  [[nodiscard]] TwoChoiceBuildStats AggregateBuildStats() const;

  /// Fraction of surviving voxels whose decode is wrong: dropped points
  /// (decode to zero) plus rare tag-collision aliases.
  [[nodiscard]] double ErrorRate() const;
  /// Dropped points only (the explicit error class).
  [[nodiscard]] double DropRate() const;

  [[nodiscard]] u64 HashTableBytes() const;
  [[nodiscard]] u64 TotalBytes() const;

 private:
  GridDims dims_;
  SubgridPartition partition_;
  std::vector<TwoChoiceTable> tables_;
  const VqrfModel* source_ = nullptr;
};

}  // namespace spnerf
