// Metrics half of the observability layer: lock-free counters and gauges
// plus log-bucketed (HDR-style) histograms, collected in a process-global
// registry. Recording is wait-free — relaxed atomic adds, no locks, no
// allocation; the registry mutex is taken only when a site first resolves
// its handle (GetCounter/GetGauge/GetHistogram, done once per site via a
// function-local static) and when snapshotting.
//
// Histograms bucket by value magnitude: each power-of-two octave is split
// into 2^kSubBucketBits linear sub-buckets (values below the first full
// octave are exact). That gives a bounded relative error of
// 1/2^kSubBucketBits (25%) at any scale, a fixed 256-slot layout for every
// histogram, and — the property the tests pin — a deterministic,
// order-independent merge: merging per-worker snapshots is a bucket-wise
// integer add, so any merge order yields bit-identical totals, matching
// the repo-wide bit-determinism contract (ARCHITECTURE.md).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace spnerf::obs {

/// Monotonic event count. Wait-free record.
class Counter {
 public:
  void Add(u64 n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] u64 Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

/// Instantaneous signed level (queue depth, inflight tokens). Wait-free.
class Gauge {
 public:
  void Add(i64 delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Set(i64 value) { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] i64 Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<i64> value_{0};
};

/// Sub-bucket resolution: 4 linear sub-buckets per power-of-two octave.
inline constexpr int kHistogramSubBucketBits = 2;
/// 256 slots cover every u64 value at that resolution (see BucketIndex).
inline constexpr std::size_t kHistogramBucketCount = 256;

/// Plain (non-atomic) copy of a histogram's state. The merge unit: merging
/// is a bucket-wise add, so it is associative, commutative and
/// order-independent — N per-worker snapshots merged in any order produce
/// bit-identical counts/sum (min/max are order-free too).
struct HistogramSnapshot {
  std::array<u64, kHistogramBucketCount> counts{};
  u64 count = 0;
  u64 sum = 0;
  u64 min = 0;  // meaningful only when count > 0
  u64 max = 0;

  void Merge(const HistogramSnapshot& other);
  /// Deterministic percentile estimate: the upper bound of the bucket
  /// containing the p-th ranked value (p in [0, 100]). 0 when empty.
  [[nodiscard]] u64 Percentile(double p) const;
  [[nodiscard]] double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Lock-free log-bucketed histogram of u64 samples (typically microseconds
/// or sizes). Record is three relaxed atomic RMWs plus two CAS min/max
/// updates that almost always short-circuit.
class Histogram {
 public:
  /// Bucket layout, exposed for the boundary tests:
  /// values < 2^kHistogramSubBucketBits map to themselves (exact);
  /// larger values map to octave-and-sub-bucket slots.
  [[nodiscard]] static std::size_t BucketIndex(u64 value);
  /// Largest value that lands in `index` (inclusive upper bound).
  [[nodiscard]] static u64 BucketUpperBound(std::size_t index);

  void Record(u64 value);
  [[nodiscard]] HistogramSnapshot Snapshot() const;
  void ResetForTest();

 private:
  std::array<std::atomic<u64>, kHistogramBucketCount> counts_{};
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
  std::atomic<u64> min_{~0ull};
  std::atomic<u64> max_{0};
};

/// One registry snapshot, entries sorted by name so exporter output (and
/// therefore the golden tests) is deterministic.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    u64 value = 0;
  };
  struct GaugeEntry {
    std::string name;
    i64 value = 0;
  };
  struct HistogramEntry {
    std::string name;
    HistogramSnapshot hist;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  [[nodiscard]] u64 CounterValue(std::string_view name, u64 fallback = 0) const;
  [[nodiscard]] const HistogramSnapshot* FindHistogram(
      std::string_view name) const;
};

/// Process-global metric store. Handles returned by Get* are stable for
/// process lifetime — resolve them once per site (function-local static or
/// a member pointer) and record through the handle, never through the map.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Copies every metric. The synthetic counter "obs/trace-dropped" (total
  /// trace-ring overflow drops, see obs/trace.hpp) is appended so drops are
  /// visible in every snapshot and exporter output.
  [[nodiscard]] MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (handles stay valid). Tests and bench
  /// phase sweeps use this to isolate windows; racing recorders are
  /// harmless (their writes land in the fresh window).
  void ResetForTest();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace spnerf::obs
