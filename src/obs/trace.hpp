// Lock-free tracing: the span/event half of the observability layer
// (src/obs/). Record sites push fixed-size POD TraceEvents into per-thread
// bounded SPSC rings (common/spsc_queue.hpp — the recording thread is the
// only producer, the drain side the only consumer), so recording takes
// zero locks and zero allocations: a branch on the process trace level,
// two monotonic clock reads and one ring store. A full ring drops the
// event and counts the drop per thread — lossy but honest: drops are
// surfaced in every snapshot and exporter output, and recording never
// blocks.
//
// The trace level is process-global, resolved once from SPNF_TRACE
// ("off" | "counters" | "full" — the same one-shot resolution rule as
// SPNF_DISPATCH / SPNF_SIMD):
//   * kOff      — every record site is a single relaxed load + branch.
//   * kCounters — the metrics registry records (obs/metrics.hpp); spans and
//                 instants are still skipped. The always-on default.
//   * kFull     — spans/instants are recorded into the rings as well.
// Tests and benches flip the level programmatically via SetActiveTraceLevel
// (scoped save/restore), exactly like dispatch::SetActiveMode.
//
// Strings: event/category/arg-key names must be static string literals
// (the event stores the pointer). Dynamic strings (pipeline keys, scene
// names) go through InternString — a fixed-capacity lock-free open-
// addressing table; interning a string already in the table is lock-free
// and allocation-free, the first occurrence of a new string allocates its
// copy once (do it off the per-event path; the serving layer interns per
// batch, not per event).
#pragma once

#include <cstddef>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

namespace spnerf::obs {

/// Observability levels, ascending cost. See the file banner.
enum class TraceLevel : u8 {
  kOff = 0,
  kCounters = 1,
  kFull = 2,
};

/// Lower-case level name ("off", "counters", "full") — used in bench
/// metadata and the SPNF_TRACE override.
[[nodiscard]] const char* TraceLevelName(TraceLevel level);

/// Parses a level name; returns false (and leaves `out` untouched) for
/// unknown strings. Case-sensitive: the override contract is lower-case.
bool ParseTraceLevelName(std::string_view name, TraceLevel& out);

/// Pure resolution rule for an override string, exposed for tests:
/// nullptr/empty -> kCounters (the always-on default); a parseable name ->
/// that level; garbage -> kCounters with a warning.
[[nodiscard]] TraceLevel ResolveTraceOverride(const char* value);

/// The current process trace level. First call resolves the SPNF_TRACE
/// override; later calls are one relaxed atomic load.
[[nodiscard]] TraceLevel ActiveTraceLevel();

/// Forces the level from now on (tests, bench phase sweeps). Returns the
/// previously active level for scoped save/restore. Flipping mid-run is
/// benign: concurrent record sites either see the old level or the new one.
TraceLevel SetActiveTraceLevel(TraceLevel level);

/// True when the metrics registry should record (level >= counters).
[[nodiscard]] bool CountersEnabled();

/// True when spans/instants should record (level == full).
[[nodiscard]] bool FullTracingEnabled();

/// Monotonic nanoseconds since the process trace epoch (first use). All
/// trace timestamps share this clock — it is intentionally NOT the
/// virtualizable common/clock.hpp source, so spans measure real wall time
/// even under a ManualClock-driven service.
[[nodiscard]] u64 TraceNowNs();

// ---------------------------------------------------------------------------
// String interning
// ---------------------------------------------------------------------------

/// Id 0 is reserved: it names the overflow/unknown string "?".
inline constexpr u32 kInternOverflowId = 0;

/// Interns `s`, returning a stable non-zero id — or kInternOverflowId when
/// the fixed table is full. Re-interning an existing string is lock-free
/// and allocation-free; the first occurrence copies the string once.
u32 InternString(std::string_view s);

/// The interned string for `id` ("?" for kInternOverflowId / unknown ids).
[[nodiscard]] const char* InternedString(u32 id);

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

inline constexpr std::size_t kTraceArgCount = 4;

enum class TraceArgKind : u8 {
  kNone = 0,
  kInt,  // value is the integer itself
  kStr,  // value is an InternString id
};

/// One key/value tag on an event. `key` must be a static string literal.
struct TraceArg {
  const char* key = nullptr;
  i64 value = 0;
  TraceArgKind kind = TraceArgKind::kNone;
};

/// One recorded span or instant. POD by design: events are copied into and
/// out of the per-thread rings byte-wise, never constructed or destroyed
/// on the hot path.
struct TraceEvent {
  u64 start_ns = 0;
  u64 end_ns = 0;  // == start_ns for instants
  const char* category = nullptr;  // static literal
  const char* name = nullptr;      // static literal
  /// Correlation id linking events of one logical operation (the serving
  /// layer uses the per-request id); 0 means none.
  u64 flow = 0;
  TraceArg args[kTraceArgCount];

  [[nodiscard]] bool IsInstant() const { return end_ns == start_ns; }
  /// Appends the next free arg slot (silently ignored once full).
  void AddArg(const char* key, i64 value);
  void AddStrArg(const char* key, u32 interned_id);
  /// Value of the arg named `key` (nullptr semantics: first match), or
  /// `fallback` when absent. For kStr args the value is the intern id.
  [[nodiscard]] i64 ArgValue(std::string_view key, i64 fallback = -1) const;
  [[nodiscard]] bool HasArg(std::string_view key) const;
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay POD: it is memcpy'd through SPSC rings");

/// Pushes one event into the calling thread's ring (creating + registering
/// the ring on the thread's first event). Full ring: the event is dropped
/// and the thread's drop counter bumped — never blocks, never allocates.
/// No-op unless FullTracingEnabled().
void Emit(const TraceEvent& event);

/// Convenience instant with up to two integer/string args.
void EmitInstant(const char* category, const char* name, u64 flow = 0);

/// RAII span: stamps start at construction, end at destruction, then
/// Emits. Inactive (zero-cost beyond the level branch) when full tracing
/// is off.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name, u64 flow = 0);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  [[nodiscard]] bool Active() const { return active_; }
  void AddArg(const char* key, i64 value);
  void AddStrArg(const char* key, u32 interned_id);
  void SetFlow(u64 flow);

 private:
  TraceEvent event_;
  bool active_ = false;
};

// ---------------------------------------------------------------------------
// Drain side
// ---------------------------------------------------------------------------

/// Everything one thread's ring held at drain time.
struct ThreadTrace {
  u32 tid = 0;  // stable small id, assigned at ring registration
  std::vector<TraceEvent> events;
  /// Events dropped on ring overflow over the thread's lifetime (cumulative
  /// — not reset by draining; honesty over resettability).
  u64 dropped = 0;
};

struct TraceSnapshot {
  std::vector<ThreadTrace> threads;
  /// Sum of per-thread drop counters (cumulative, see ThreadTrace).
  u64 dropped_total = 0;

  /// Every event of every thread, sorted by (start_ns, end_ns desc) so an
  /// enclosing span precedes its children.
  [[nodiscard]] std::vector<TraceEvent> Flatten() const;
  /// Flattened events carrying `flow`, in the same order — the per-request
  /// timeline the serving spans reconstruct.
  [[nodiscard]] std::vector<TraceEvent> EventsForFlow(u64 flow) const;
};

/// Pops every event currently in every thread ring. Serialized internally
/// (one drainer at a time — the SPSC consumer contract); producers keep
/// recording concurrently. Draining does not reset drop counters.
TraceSnapshot DrainTrace();

/// Cumulative events dropped across all threads (cheap: one relaxed load
/// per registered ring).
[[nodiscard]] u64 TotalTraceDropped();

/// Capacity of rings created AFTER this call (existing thread rings keep
/// theirs). Tests shrink it to force overflow on a fresh thread; benches
/// may grow it for long traces. Returns the previous default.
std::size_t SetDefaultTraceRingCapacity(std::size_t capacity);

inline constexpr std::size_t kDefaultTraceRingCapacity = 8192;

}  // namespace spnerf::obs
