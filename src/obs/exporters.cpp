#include "obs/exporters.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace spnerf::obs {
namespace {

void AppendJsonEscaped(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

/// Chrome trace timestamps are microseconds; emit ns-resolution as
/// fixed-point micros ("12.345") so nothing is rounded away and the output
/// stays locale/precision independent.
void AppendMicros(std::ostream& out, u64 ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out << buf;
}

void AppendEventArgs(std::ostream& out, const TraceEvent& ev) {
  out << "\"args\":{";
  bool first = true;
  if (ev.flow != 0) {
    out << "\"request\":" << ev.flow;
    first = false;
  }
  for (const TraceArg& arg : ev.args) {
    if (arg.kind == TraceArgKind::kNone || arg.key == nullptr) continue;
    if (!first) out << ",";
    first = false;
    out << "\"";
    AppendJsonEscaped(out, arg.key);
    out << "\":";
    if (arg.kind == TraceArgKind::kStr) {
      out << "\"";
      AppendJsonEscaped(out, InternedString(static_cast<u32>(arg.value)));
      out << "\"";
    } else {
      out << arg.value;
    }
  }
  out << "}";
}

}  // namespace

void WriteChromeTrace(std::ostream& out, const TraceSnapshot& snapshot) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const ThreadTrace& thread : snapshot.threads) {
    for (const TraceEvent& ev : thread.events) {
      if (!first) out << ",\n";
      first = false;
      out << "{\"name\":\"";
      AppendJsonEscaped(out, ev.name == nullptr ? "?" : ev.name);
      out << "\",\"cat\":\"";
      AppendJsonEscaped(out, ev.category == nullptr ? "?" : ev.category);
      if (ev.IsInstant()) {
        out << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
        AppendMicros(out, ev.start_ns);
      } else {
        out << "\",\"ph\":\"X\",\"ts\":";
        AppendMicros(out, ev.start_ns);
        out << ",\"dur\":";
        AppendMicros(out, ev.end_ns - ev.start_ns);
      }
      out << ",\"pid\":1,\"tid\":" << thread.tid << ",";
      AppendEventArgs(out, ev);
      out << "}";
    }
    if (thread.dropped != 0) {
      // One counter event per overflowing thread: visible as a track in the
      // viewer, and greppable in the raw JSON.
      if (!first) out << ",\n";
      first = false;
      out << "{\"name\":\"trace_dropped\",\"cat\":\"obs\",\"ph\":\"C\","
             "\"ts\":0,\"pid\":1,\"tid\":"
          << thread.tid << ",\"args\":{\"dropped\":" << thread.dropped
          << "}}";
    }
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_total\":"
      << snapshot.dropped_total << "}}\n";
}

std::string PrometheusName(std::string_view name) {
  std::string out = "spnerf_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  return out;
}

void WritePrometheus(std::ostream& out, const MetricsSnapshot& snapshot) {
  for (const MetricsSnapshot::CounterEntry& c : snapshot.counters) {
    const std::string name = PrometheusName(c.name) + "_total";
    out << "# TYPE " << name << " counter\n";
    out << name << " " << c.value << "\n";
  }
  for (const MetricsSnapshot::GaugeEntry& g : snapshot.gauges) {
    const std::string name = PrometheusName(g.name);
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << g.value << "\n";
  }
  for (const MetricsSnapshot::HistogramEntry& h : snapshot.histograms) {
    const std::string name = PrometheusName(h.name);
    out << "# TYPE " << name << " histogram\n";
    u64 cumulative = 0;
    for (std::size_t i = 0; i < kHistogramBucketCount; ++i) {
      if (h.hist.counts[i] == 0) continue;  // cumulative encoding stays exact
      cumulative += h.hist.counts[i];
      out << name << "_bucket{le=\"" << Histogram::BucketUpperBound(i)
          << "\"} " << cumulative << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.hist.count << "\n";
    out << name << "_sum " << h.hist.sum << "\n";
    out << name << "_count " << h.hist.count << "\n";
  }
}

bool WriteChromeTraceFile(const std::string& path,
                          const TraceSnapshot& snapshot) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[obs] cannot open trace file %s\n", path.c_str());
    return false;
  }
  WriteChromeTrace(out, snapshot);
  return out.good();
}

bool WritePrometheusFile(const std::string& path,
                         const MetricsSnapshot& snapshot) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[obs] cannot open metrics file %s\n", path.c_str());
    return false;
  }
  WritePrometheus(out, snapshot);
  return out.good();
}

}  // namespace spnerf::obs
