#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/spsc_queue.hpp"

namespace spnerf::obs {
namespace {

// ---------------------------------------------------------------------------
// Level
// ---------------------------------------------------------------------------

std::atomic<TraceLevel>& LevelSlot() {
  // First touch resolves the SPNF_TRACE override; the function-local static
  // makes the resolution thread-safe without an explicit once_flag.
  static std::atomic<TraceLevel> active{
      ResolveTraceOverride(std::getenv("SPNF_TRACE"))};
  return active;
}

// ---------------------------------------------------------------------------
// Trace clock
// ---------------------------------------------------------------------------

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// ---------------------------------------------------------------------------
// Interning
// ---------------------------------------------------------------------------

// Fixed open-addressing table of owned C strings. Slot i holds id i+1; a
// published pointer is immutable for process lifetime, so readers only need
// an acquire load. Insertion is the cold path (first occurrence of a
// string) and may allocate; it races via CAS, losers free their copy.
constexpr std::size_t kInternCapacity = 1024;

std::atomic<const char*> g_intern_slots[kInternCapacity];

u64 HashString(std::string_view s) {
  // FNV-1a: cheap, stable, and plenty for a 1k-slot table.
  u64 h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Per-thread rings + registry
// ---------------------------------------------------------------------------

struct ThreadRing {
  explicit ThreadRing(std::size_t capacity, u32 tid_in)
      : ring(capacity), tid(tid_in) {}
  SpscQueue<TraceEvent> ring;
  std::atomic<u64> dropped{0};
  u32 tid;
};

std::atomic<std::size_t> g_default_ring_capacity{kDefaultTraceRingCapacity};

// The registry owns every ring ever created (shared_ptr, so a ring outlives
// its thread and late drains still see its events/drops). Locked only on
// thread-first-event registration and on drain — never on record.
struct RingRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  u32 next_tid = 1;
};

RingRegistry& Registry() {
  static RingRegistry* reg = new RingRegistry();  // leaked: record sites may
  return *reg;                                    // outlive static dtors
}

ThreadRing& LocalRing() {
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    RingRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto created = std::make_shared<ThreadRing>(
        g_default_ring_capacity.load(std::memory_order_relaxed),
        reg.next_tid++);
    reg.rings.push_back(created);
    return created;
  }();
  return *ring;
}

// Serializes drains: the rings' consumer side is single-consumer by
// contract, so only one DrainTrace may pop at a time.
std::mutex& DrainMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

}  // namespace

const char* TraceLevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff: return "off";
    case TraceLevel::kCounters: return "counters";
    case TraceLevel::kFull: return "full";
  }
  return "counters";
}

bool ParseTraceLevelName(std::string_view name, TraceLevel& out) {
  if (name == "off") {
    out = TraceLevel::kOff;
    return true;
  }
  if (name == "counters") {
    out = TraceLevel::kCounters;
    return true;
  }
  if (name == "full") {
    out = TraceLevel::kFull;
    return true;
  }
  return false;
}

TraceLevel ResolveTraceOverride(const char* value) {
  if (value == nullptr || value[0] == '\0') return TraceLevel::kCounters;
  TraceLevel requested;
  if (!ParseTraceLevelName(value, requested)) {
    std::fprintf(stderr,
                 "[obs] unknown SPNF_TRACE value '%s'; using 'counters'\n",
                 value);
    return TraceLevel::kCounters;
  }
  return requested;
}

TraceLevel ActiveTraceLevel() {
  return LevelSlot().load(std::memory_order_relaxed);
}

TraceLevel SetActiveTraceLevel(TraceLevel level) {
  return LevelSlot().exchange(level, std::memory_order_relaxed);
}

bool CountersEnabled() { return ActiveTraceLevel() >= TraceLevel::kCounters; }

bool FullTracingEnabled() { return ActiveTraceLevel() == TraceLevel::kFull; }

u64 TraceNowNs() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - TraceEpoch())
                              .count());
}

u32 InternString(std::string_view s) {
  if (s.empty()) return kInternOverflowId;
  const u64 hash = HashString(s);
  for (std::size_t probe = 0; probe < kInternCapacity; ++probe) {
    const std::size_t slot = (hash + probe) & (kInternCapacity - 1);
    const char* existing =
        g_intern_slots[slot].load(std::memory_order_acquire);
    if (existing == nullptr) {
      // Cold path: first occurrence. Copy the string, try to claim the slot.
      char* copy = new char[s.size() + 1];
      std::memcpy(copy, s.data(), s.size());
      copy[s.size()] = '\0';
      const char* expected = nullptr;
      if (g_intern_slots[slot].compare_exchange_strong(
              expected, copy, std::memory_order_release,
              std::memory_order_acquire)) {
        return static_cast<u32>(slot + 1);
      }
      delete[] copy;  // lost the race; re-check the winner below
      existing = expected;
    }
    if (s == existing) return static_cast<u32>(slot + 1);
  }
  return kInternOverflowId;  // table full — lossy but honest
}

const char* InternedString(u32 id) {
  if (id == kInternOverflowId || id > kInternCapacity) return "?";
  const char* s = g_intern_slots[id - 1].load(std::memory_order_acquire);
  return s == nullptr ? "?" : s;
}

void TraceEvent::AddArg(const char* key, i64 value) {
  for (TraceArg& arg : args) {
    if (arg.kind == TraceArgKind::kNone) {
      arg = TraceArg{key, value, TraceArgKind::kInt};
      return;
    }
  }
}

void TraceEvent::AddStrArg(const char* key, u32 interned_id) {
  for (TraceArg& arg : args) {
    if (arg.kind == TraceArgKind::kNone) {
      arg = TraceArg{key, static_cast<i64>(interned_id), TraceArgKind::kStr};
      return;
    }
  }
}

i64 TraceEvent::ArgValue(std::string_view key, i64 fallback) const {
  for (const TraceArg& arg : args) {
    if (arg.kind != TraceArgKind::kNone && arg.key != nullptr &&
        key == arg.key) {
      return arg.value;
    }
  }
  return fallback;
}

bool TraceEvent::HasArg(std::string_view key) const {
  for (const TraceArg& arg : args) {
    if (arg.kind != TraceArgKind::kNone && arg.key != nullptr &&
        key == arg.key) {
      return true;
    }
  }
  return false;
}

void Emit(const TraceEvent& event) {
  if (!FullTracingEnabled()) return;
  ThreadRing& ring = LocalRing();
  if (!ring.ring.TryPush(event)) {
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

void EmitInstant(const char* category, const char* name, u64 flow) {
  if (!FullTracingEnabled()) return;
  TraceEvent ev;
  ev.start_ns = ev.end_ns = TraceNowNs();
  ev.category = category;
  ev.name = name;
  ev.flow = flow;
  Emit(ev);
}

TraceSpan::TraceSpan(const char* category, const char* name, u64 flow) {
  if (!FullTracingEnabled()) return;
  active_ = true;
  event_.category = category;
  event_.name = name;
  event_.flow = flow;
  event_.start_ns = TraceNowNs();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  event_.end_ns = TraceNowNs();
  Emit(event_);
}

void TraceSpan::AddArg(const char* key, i64 value) {
  if (active_) event_.AddArg(key, value);
}

void TraceSpan::AddStrArg(const char* key, u32 interned_id) {
  if (active_) event_.AddStrArg(key, interned_id);
}

void TraceSpan::SetFlow(u64 flow) {
  if (active_) event_.flow = flow;
}

std::vector<TraceEvent> TraceSnapshot::Flatten() const {
  std::vector<TraceEvent> all;
  std::size_t total = 0;
  for (const ThreadTrace& t : threads) total += t.events.size();
  all.reserve(total);
  for (const ThreadTrace& t : threads) {
    all.insert(all.end(), t.events.begin(), t.events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.end_ns > b.end_ns;  // enclosing span first
                   });
  return all;
}

std::vector<TraceEvent> TraceSnapshot::EventsForFlow(u64 flow) const {
  std::vector<TraceEvent> all = Flatten();
  all.erase(std::remove_if(all.begin(), all.end(),
                           [flow](const TraceEvent& e) { return e.flow != flow; }),
            all.end());
  return all;
}

TraceSnapshot DrainTrace() {
  std::lock_guard<std::mutex> drain_lock(DrainMutex());
  // Snapshot the ring list, then pop outside the registry lock so recording
  // threads registering new rings are never blocked by a long drain.
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    RingRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    rings = reg.rings;
  }
  TraceSnapshot snapshot;
  snapshot.threads.reserve(rings.size());
  for (const std::shared_ptr<ThreadRing>& ring : rings) {
    ThreadTrace trace;
    trace.tid = ring->tid;
    TraceEvent ev;
    while (ring->ring.TryPop(ev)) trace.events.push_back(ev);
    trace.dropped = ring->dropped.load(std::memory_order_relaxed);
    snapshot.dropped_total += trace.dropped;
    if (!trace.events.empty() || trace.dropped != 0) {
      snapshot.threads.push_back(std::move(trace));
    }
  }
  return snapshot;
}

u64 TotalTraceDropped() {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  u64 total = 0;
  for (const std::shared_ptr<ThreadRing>& ring : reg.rings) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t SetDefaultTraceRingCapacity(std::size_t capacity) {
  return g_default_ring_capacity.exchange(capacity,
                                          std::memory_order_relaxed);
}

}  // namespace spnerf::obs
