#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "obs/trace.hpp"

namespace spnerf::obs {

namespace {

/// Index of the highest set bit (value must be non-zero).
int MsbIndex(u64 value) {
  int msb = 0;
  while (value >>= 1) ++msb;
  return msb;
}

}  // namespace

// ---------------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------------

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kHistogramBucketCount; ++i) {
    counts[i] += other.counts[i];
  }
  if (other.count != 0) {
    min = count == 0 ? other.min : std::min(min, other.min);
    max = count == 0 ? other.max : std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

u64 HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  const double clamped = std::min(100.0, std::max(0.0, p));
  u64 rank = static_cast<u64>(std::ceil(clamped / 100.0 *
                                        static_cast<double>(count)));
  if (rank == 0) rank = 1;
  u64 cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBucketCount; ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      // Clamp the bucket bound to the observed max so p100 reports a value
      // that was actually recorded-scale, not the bucket ceiling.
      return std::min(Histogram::BucketUpperBound(i), max);
    }
  }
  return max;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::size_t Histogram::BucketIndex(u64 value) {
  constexpr int kSub = kHistogramSubBucketBits;
  constexpr u64 kSubCount = 1ull << kSub;  // 4 sub-buckets per octave
  if (value < kSubCount) return static_cast<std::size_t>(value);  // exact
  const int octave = MsbIndex(value) - kSub;
  const u64 sub = (value >> octave) & (kSubCount - 1);
  return static_cast<std::size_t>((static_cast<u64>(octave) + 1) * kSubCount +
                                  sub);
}

u64 Histogram::BucketUpperBound(std::size_t index) {
  constexpr int kSub = kHistogramSubBucketBits;
  constexpr u64 kSubCount = 1ull << kSub;
  if (index < kSubCount) return static_cast<u64>(index);  // exact buckets
  const u64 octave = index / kSubCount - 1;
  const u64 sub = index % kSubCount;
  // Bucket [index] holds values in [(kSubCount+sub) << octave,
  // ((kSubCount+sub+1) << octave) - 1]; the top bucket's bound wraps to
  // u64 max, which is exactly right.
  return ((kSubCount + sub + 1) << octave) - 1;
}

void Histogram::Record(u64 value) {
  counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  u64 seen_min = min_.load(std::memory_order_relaxed);
  while (value < seen_min &&
         !min_.compare_exchange_weak(seen_min, value,
                                     std::memory_order_relaxed)) {
  }
  u64 seen_max = max_.load(std::memory_order_relaxed);
  while (value > seen_max &&
         !max_.compare_exchange_weak(seen_max, value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kHistogramBucketCount; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.count += snap.counts[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::ResetForTest() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsSnapshot lookups
// ---------------------------------------------------------------------------

u64 MetricsSnapshot::CounterValue(std::string_view name, u64 fallback) const {
  for (const CounterEntry& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramEntry& h : histograms) {
    if (h.name == name) return &h.hist;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

// std::map keeps iteration sorted by name (deterministic snapshots) and
// unique_ptr values keep handle addresses stable across rehash-free growth.
struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  // Leaked singleton storage: metric handles are recorded into from worker
  // threads that may outlive static destruction order.
  static Impl* impl = new Impl();
  return *impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.counters.find(name);
  if (it == i.counters.end()) {
    it = i.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.gauges.find(name);
  if (it == i.gauges.end()) {
    it = i.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.histograms.find(name);
  if (it == i.histograms.end()) {
    it = i.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& i = impl();
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(i.mutex);
    snap.counters.reserve(i.counters.size() + 1);
    for (const auto& [name, counter] : i.counters) {
      snap.counters.push_back({name, counter->Value()});
    }
    snap.gauges.reserve(i.gauges.size());
    for (const auto& [name, gauge] : i.gauges) {
      snap.gauges.push_back({name, gauge->Value()});
    }
    snap.histograms.reserve(i.histograms.size());
    for (const auto& [name, histogram] : i.histograms) {
      snap.histograms.push_back({name, histogram->Snapshot()});
    }
  }
  // Surface trace-ring overflow in every snapshot (lossy-but-honest
  // contract, obs/trace.hpp). Inserted in sorted position to keep the
  // exporter output deterministic.
  MetricsSnapshot::CounterEntry dropped{"obs/trace-dropped",
                                        TotalTraceDropped()};
  snap.counters.insert(
      std::upper_bound(snap.counters.begin(), snap.counters.end(), dropped,
                       [](const MetricsSnapshot::CounterEntry& a,
                          const MetricsSnapshot::CounterEntry& b) {
                         return a.name < b.name;
                       }),
      std::move(dropped));
  return snap;
}

void MetricsRegistry::ResetForTest() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (auto& [name, counter] : i.counters) counter->ResetForTest();
  for (auto& [name, gauge] : i.gauges) gauge->ResetForTest();
  for (auto& [name, histogram] : i.histograms) histogram->ResetForTest();
}

}  // namespace spnerf::obs
