// Exporters for the observability layer: Chrome `trace_event` JSON (load
// the file in chrome://tracing or https://ui.perfetto.dev) for drained
// trace snapshots, and Prometheus text exposition (version 0.0.4) for
// metrics snapshots. Both emit deterministic output for a given snapshot —
// entries are pre-sorted and numbers formatted with fixed rules — so the
// golden tests in tests/test_obs.cpp can compare byte-for-byte.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spnerf::obs {

/// Writes `snapshot` as a Chrome trace_event JSON object:
///   * spans become "ph":"X" complete events (ts/dur in microseconds, as
///     the format requires), instants become "ph":"i" thread-scoped events;
///   * the event's flow id is surfaced as args.request so timelines can be
///     filtered per request;
///   * per-thread overflow drops become one "trace_dropped" counter event
///     per thread plus a process-level metadata summary — drops are never
///     silent (lossy-but-honest contract, obs/trace.hpp).
void WriteChromeTrace(std::ostream& out, const TraceSnapshot& snapshot);

/// Writes `snapshot` in Prometheus text exposition format: counters as
/// `<name>_total`, gauges bare, histograms as cumulative `_bucket{le=...}`
/// series plus `_sum`/`_count`. Empty histogram buckets are elided (the
/// cumulative encoding keeps the series exact); metric names are sanitized
/// via PrometheusName.
void WritePrometheus(std::ostream& out, const MetricsSnapshot& snapshot);

/// Registry metric names use '/' and '-' ("serve/queue-us"); Prometheus
/// allows [a-zA-Z0-9_:]. Maps every illegal char to '_' and prefixes
/// "spnerf_": "serve/queue-us" -> "spnerf_serve_queue_us".
[[nodiscard]] std::string PrometheusName(std::string_view name);

/// File-writing wrappers; return false (with a stderr note) when the file
/// cannot be opened.
bool WriteChromeTraceFile(const std::string& path,
                          const TraceSnapshot& snapshot);
bool WritePrometheusFile(const std::string& path,
                         const MetricsSnapshot& snapshot);

}  // namespace spnerf::obs
