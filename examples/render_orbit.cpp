// Renders an orbit of views around a scene through the SpNeRF online-decode
// path and writes them as PPM frames — the AR/VR-style novel-view workload
// the paper's introduction motivates.
//
// Usage: ./render_orbit [scene=chair] [views=8] [size=160] [res=128]
//        [masking=1]
#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const Config args = Config::FromArgs(argc, argv);

  PipelineConfig config;
  config.scene_id = SceneFromName(args.GetString("scene", "chair"));
  config.dataset.resolution_override = args.GetInt("res", 128);
  const int views = args.GetInt("views", 8);
  const int size = args.GetInt("size", 160);
  const bool masking = args.GetBool("masking", true);

  std::printf("rendering %d orbit views of '%s' (%dx%d, masking %s)\n", views,
              SceneName(config.scene_id), size, size, masking ? "on" : "off");

  const ScenePipeline pipeline = ScenePipeline::Build(config);
  RenderStats total;
  for (int v = 0; v < views; ++v) {
    const Camera cam = pipeline.MakeCamera(size, size, v, views);
    RenderStats stats;
    const Image img = pipeline.RenderSpnerf(cam, masking, &stats);
    char name[64];
    std::snprintf(name, sizeof(name), "orbit_%s_%02d.ppm",
                  SceneName(config.scene_id), v);
    img.WritePpm(name);
    std::printf("  view %2d: %s  (%llu samples, %llu MLP evals, "
                "%.1f evals/ray)\n",
                v, name, static_cast<unsigned long long>(stats.steps),
                static_cast<unsigned long long>(stats.mlp_evals),
                stats.evals_per_ray.Mean());
    total.steps += stats.steps;
    total.mlp_evals += stats.mlp_evals;
    total.rays += stats.rays;
  }
  std::printf("total: %llu rays, %llu samples, %llu MLP evaluations\n",
              static_cast<unsigned long long>(total.rays),
              static_cast<unsigned long long>(total.steps),
              static_cast<unsigned long long>(total.mlp_evals));
  return 0;
}
