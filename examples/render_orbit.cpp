// Renders an orbit of views around a scene through the SpNeRF online-decode
// path and writes them as PPM frames — the AR/VR-style novel-view workload
// the paper's introduction motivates. All views render as one batch through
// the tile engine: their tiles interleave across the worker pool, with
// per-view statistics collected in parallel.
//
// Usage: ./render_orbit [scene=chair] [views=8] [size=160] [res=128]
//        [masking=1] [threads=0]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/pipeline_repository.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const Config args = Config::FromArgs(argc, argv);

  PipelineConfig config;
  config.scene_id = SceneFromName(args.GetString("scene", "chair"));
  config.dataset.resolution_override = args.GetInt("res", 128);
  config.engine.max_threads = static_cast<unsigned>(args.GetInt("threads", 0));
  const int views = args.GetInt("views", 8);
  const int size = args.GetInt("size", 160);
  const bool masking = args.GetBool("masking", true);

  std::printf("rendering %d orbit views of '%s' (%dx%d, masking %s)\n", views,
              SceneName(config.scene_id), size, size, masking ? "on" : "off");

  const std::shared_ptr<const ScenePipeline> pipeline =
      PipelineRepository::Global().Acquire(config);
  SpNeRFFieldSource source(pipeline->Codec(), config.render.fp16_mlp,
                           /*collect_counters=*/false);
  source.SetMasking(masking);

  std::vector<RenderJob> jobs;
  for (int v = 0; v < views; ++v) {
    RenderJob job;
    job.source = &source;
    job.mlp = &pipeline->GetMlp();
    job.camera = pipeline->MakeCamera(size, size, v, views);
    job.options = pipeline->RenderOptionsWithSkip();
    job.collect_stats = true;
    jobs.push_back(job);
  }
  const std::vector<RenderResult> results =
      pipeline->MakeEngine().RenderBatch(jobs);

  RenderStats total;
  for (int v = 0; v < views; ++v) {
    const RenderResult& r = results[static_cast<std::size_t>(v)];
    char name[64];
    std::snprintf(name, sizeof(name), "orbit_%s_%02d.ppm",
                  SceneName(config.scene_id), v);
    r.image.WritePpm(name);
    std::printf("  view %2d: %s  (%llu samples, %llu MLP evals, "
                "%.1f evals/ray)\n",
                v, name, static_cast<unsigned long long>(r.stats.steps),
                static_cast<unsigned long long>(r.stats.mlp_evals),
                r.stats.evals_per_ray.Mean());
    total.Merge(r.stats);
  }
  // wall_ms is per-job (issue -> that job's completion); the batch's wall
  // time is the slowest job's span, not the first's.
  double batch_ms = 0.0;
  for (const RenderResult& r : results) batch_ms = std::max(batch_ms, r.wall_ms);
  std::printf("total: %llu rays, %llu samples, %llu MLP evaluations in "
              "%.1f ms\n",
              static_cast<unsigned long long>(total.rays),
              static_cast<unsigned long long>(total.steps),
              static_cast<unsigned long long>(total.mlp_evals), batch_ms);
  return 0;
}
