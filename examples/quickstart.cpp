// Quickstart: the whole SpNeRF pipeline on one scene in ~40 lines of API.
//
//   1. build a procedural Synthetic-NeRF-style scene and voxelize it;
//   2. compress it into a VQRF model (prune + vector-quantise);
//   3. run SpNeRF preprocessing (x-partitioned subgrid hash tables);
//   4. render ground truth, VQRF and SpNeRF views and compare PSNR;
//   5. simulate the accelerator on the measured frame workload.
//
// Usage: ./quickstart [scene=lego] [res=128] [img=128]
#include <cstdio>

#include "common/config.hpp"
#include "common/image_diff.hpp"
#include "common/ssim.hpp"
#include "common/units.hpp"
#include "core/pipeline_repository.hpp"
#include "sim/accelerator.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const Config args = Config::FromArgs(argc, argv);

  PipelineConfig config;
  config.scene_id = SceneFromName(args.GetString("scene", "lego"));
  config.dataset.resolution_override = args.GetInt("res", 128);
  const int image_size = args.GetInt("img", 128);

  std::printf("== SpNeRF quickstart: scene '%s' at %d^3 ==\n",
              SceneName(config.scene_id), config.dataset.resolution_override);

  // Acquire everything (dataset -> VQRF -> SpNeRF preprocessing) through
  // the shared repository: the first run builds and persists the assets,
  // later runs with the same parameters deserialize or reuse them.
  const std::shared_ptr<const ScenePipeline> pipeline =
      PipelineRepository::Global().Acquire(config);
  for (const AssetTimingEntry& e :
       PipelineRepository::Global().DrainTimings()) {
    std::printf("[assets] %s: %s in %.1f ms\n", e.name.c_str(),
                AssetOriginName(e.origin), e.wall_ms);
  }
  const VqrfModel& vqrf = *pipeline->Dataset().vqrf;
  const SpNeRFModel& codec = pipeline->Codec();

  std::printf("non-zero voxels: %llu (%.2f%% of grid), kept %llu, VQ %llu\n",
              static_cast<unsigned long long>(vqrf.NonZeroCount()),
              100.0 * static_cast<double>(vqrf.NonZeroCount()) /
                  static_cast<double>(vqrf.Dims().VoxelCount()),
              static_cast<unsigned long long>(vqrf.KeptCount()),
              static_cast<unsigned long long>(vqrf.VqCount()));
  std::printf("memory: VQRF restored %s  ->  SpNeRF encoded %s (%.1fx)\n",
              FormatBytes(vqrf.RestoredBytes()).c_str(),
              FormatBytes(codec.TotalBytes()).c_str(),
              static_cast<double>(vqrf.RestoredBytes()) /
                  static_cast<double>(codec.TotalBytes()));

  // Render the compared paths as one engine batch: ground truth, VQRF and
  // the two SpNeRF masking variants share a single tile scheduler.
  const Camera cam = pipeline->MakeCamera(image_size, image_size);
  Image gt, vq_img, sp_pre, sp_post;
  const double batch_ms =
      pipeline->RenderComparison(cam, &gt, &vq_img, &sp_pre, &sp_post);
  std::printf("rendered 4 views in one batch: %.1f ms\n", batch_ms);

  std::printf("PSNR vs ground truth: VQRF %.2f dB | SpNeRF pre-mask %.2f dB "
              "| SpNeRF post-mask %.2f dB\n",
              Psnr(gt, vq_img), Psnr(gt, sp_pre), Psnr(gt, sp_post));
  std::printf("SSIM vs ground truth: VQRF %.4f | SpNeRF post-mask %.4f\n",
              Ssim(gt, vq_img), Ssim(gt, sp_post));

  gt.WritePpm("quickstart_gt.ppm");
  vq_img.WritePpm("quickstart_vqrf.ppm");
  sp_post.WritePpm("quickstart_spnerf.ppm");
  ErrorHeatmap(gt, sp_pre).WritePpm("quickstart_err_premask.ppm");
  ErrorHeatmap(gt, sp_post).WritePpm("quickstart_err_postmask.ppm");
  std::printf("wrote quickstart_{gt,vqrf,spnerf}.ppm and error heatmaps "
              "(pre-mask errors flood empty space; post-mask errors sit on "
              "surfaces)\n");

  // Hardware: simulate one 800x800 frame of this scene.
  const FrameWorkload workload = pipeline->MeasureWorkload();
  const AcceleratorSim sim;
  const SimResult r = sim.SimulateFrame(workload);
  std::printf("accelerator: %.2f fps @ %s (%s-bound, systolic util %.0f%%)\n",
              r.fps, FormatWatts(r.power.total_w).c_str(),
              r.bottleneck.c_str(), r.systolic_utilization * 100.0);
  std::printf("             %.2f mm^2, %s DRAM traffic per frame\n",
              r.area.total_mm2, FormatBytes(r.dram.TotalBytes()).c_str());
  return 0;
}
