// Serving demo: stand up a RenderService, replay a seeded open-loop trace
// against it (hot/cold scene skew, mixed priorities, some deadlines), and
// print what each scheduling class experienced. The shortest tour of the
// serve/ layer: Submit -> future -> RenderResponse.
//
// Usage: ./serve_demo [requests=64] [scenes=3] [res=64] [img=48] [rate=30]
//        [capacity=16]
#include <algorithm>
#include <cstdio>
#include <map>

#include "common/config.hpp"
#include "serve/load_generator.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const Config args = Config::FromArgs(argc, argv);

  std::vector<SceneId> scenes = AllScenes();
  scenes.resize(static_cast<std::size_t>(
      std::max(1, std::min(args.GetInt("scenes", 3), kSceneCount))));

  LoadGeneratorOptions load;
  load.request_count = static_cast<std::size_t>(args.GetInt("requests", 64));
  load.scenes = scenes;
  load.hot_scene_count = 1;
  load.arrival_rate_rps = args.GetDouble("rate", 30.0);
  load.deadline_fraction = 0.25;
  load.deadline_ms = 400.0;
  load.base.config.dataset.resolution_override = args.GetInt("res", 64);
  load.base.image_width = load.base.image_height = args.GetInt("img", 48);

  RenderServiceOptions opts;
  opts.queue_capacity = static_cast<std::size_t>(args.GetInt("capacity", 16));

  std::printf("== serve_demo: %zu requests over %zu scene(s) at %.0f rps "
              "(queue capacity %zu) ==\n",
              load.request_count, scenes.size(), load.arrival_rate_rps,
              opts.queue_capacity);

  RenderService service(opts);
  const std::vector<TimedRequest> trace =
      LoadGenerator(load).GenerateTrace();
  const ReplayResult replay = ReplayTrace(service, trace);
  service.Drain();

  // Per-priority outcome breakdown from the per-request responses.
  std::map<RequestPriority, std::map<RequestStatus, int>> outcomes;
  std::map<RequestPriority, LatencySample> latency;
  for (std::size_t i = 0; i < replay.responses.size(); ++i) {
    const RenderResponse& r = replay.responses[i];
    const RequestPriority p = trace[i].request.priority;
    ++outcomes[p][r.status];
    if (r.status == RequestStatus::kCompleted) latency[p].Record(r.total_ms);
  }

  std::printf("%-12s %5s %5s %5s | %9s %9s\n", "priority", "done", "rej",
              "exp", "p50 ms", "p95 ms");
  for (RequestPriority p : {RequestPriority::kInteractive,
                            RequestPriority::kNormal,
                            RequestPriority::kBatch}) {
    std::printf("%-12s %5d %5d %5d | %9.2f %9.2f\n", RequestPriorityName(p),
                outcomes[p][RequestStatus::kCompleted],
                outcomes[p][RequestStatus::kRejected],
                outcomes[p][RequestStatus::kExpired],
                latency[p].Percentile(50), latency[p].Percentile(95));
  }

  const ServiceStatsSnapshot stats = service.Stats();
  std::printf("\n%.1f rps served | queue peak %zu/%zu | %llu engine "
              "batch(es), mean size %.2f\n",
              stats.ThroughputRps(), stats.queue_peak, opts.queue_capacity,
              static_cast<unsigned long long>(stats.batches),
              stats.MeanBatchSize());
  std::printf("replayed %.0f ms of open-loop traffic; rejected and expired "
              "requests were shed by admission control, not queued forever\n",
              replay.wall_ms);
  return 0;
}
