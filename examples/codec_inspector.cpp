// Inspects the SpNeRF encoded representation of a scene: per-subgrid hash
// table load and collisions, the memory budget, and a step-by-step decode
// trace of a single voxel through bitmap -> Eq.(1) hash -> unified 18-bit
// dispatch, exactly as the SGPU executes it.
//
// Usage: ./codec_inspector [scene=drums] [res=128] [subgrids=64] [table=32768]
#include <cstdio>

#include "common/config.hpp"
#include "common/units.hpp"
#include "core/pipeline_repository.hpp"
#include "encoding/hash.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const Config args = Config::FromArgs(argc, argv);

  PipelineConfig config;
  config.scene_id = SceneFromName(args.GetString("scene", "drums"));
  config.dataset.resolution_override = args.GetInt("res", 128);
  config.spnerf.subgrid_count = args.GetInt("subgrids", 64);
  config.spnerf.table_size = static_cast<u32>(args.GetInt("table", 32768));

  const std::shared_ptr<const ScenePipeline> pipeline =
      PipelineRepository::Global().Acquire(config);
  const SpNeRFModel& codec = pipeline->Codec();
  const VqrfModel& vqrf = *pipeline->Dataset().vqrf;

  std::printf("== SpNeRF codec for '%s': K=%d subgrids, T=%u entries ==\n",
              SceneName(config.scene_id), config.spnerf.subgrid_count,
              config.spnerf.table_size);

  // Memory budget.
  std::printf("\nencoded memory budget:\n");
  std::printf("  hash tables : %10s (%d x %u x 26 bits)\n",
              FormatBytes(codec.HashTableBytes()).c_str(),
              config.spnerf.subgrid_count, config.spnerf.table_size);
  std::printf("  bitmap      : %10s (1 bit per voxel)\n",
              FormatBytes(codec.BitmapBytes()).c_str());
  std::printf("  codebook    : %10s (%d x %d INT8)\n",
              FormatBytes(codec.CodebookBytes()).c_str(),
              vqrf.GetCodebook().Size(), kColorFeatureDim);
  std::printf("  true grid   : %10s (%llu kept voxels)\n",
              FormatBytes(codec.TrueGridBytes()).c_str(),
              static_cast<unsigned long long>(vqrf.KeptCount()));
  std::printf("  total       : %10s vs restored %s (%.1fx smaller)\n",
              FormatBytes(codec.TotalBytes()).c_str(),
              FormatBytes(vqrf.RestoredBytes()).c_str(),
              static_cast<double>(vqrf.RestoredBytes()) /
                  static_cast<double>(codec.TotalBytes()));

  // Per-subgrid occupancy histogram (min/mean/max load).
  std::printf("\nper-subgrid hash-table load:\n");
  u64 min_ins = ~0ull, max_ins = 0, total_ins = 0, total_coll = 0;
  for (const auto& table : codec.Tables()) {
    const HashBuildStats& s = table.BuildStats();
    const u64 pts = s.inserted + s.collisions;
    min_ins = std::min(min_ins, pts);
    max_ins = std::max(max_ins, pts);
    total_ins += pts;
    total_coll += s.collisions;
  }
  std::printf("  points per subgrid: min %llu, mean %.0f, max %llu\n",
              static_cast<unsigned long long>(min_ins),
              static_cast<double>(total_ins) /
                  static_cast<double>(codec.Tables().size()),
              static_cast<unsigned long long>(max_ins));
  std::printf("  build collisions: %llu of %llu points (%.2f%%), residual "
              "alias rate %.2f%%\n",
              static_cast<unsigned long long>(total_coll),
              static_cast<unsigned long long>(total_ins),
              100.0 * static_cast<double>(total_coll) /
                  static_cast<double>(total_ins),
              codec.NonZeroAliasRate() * 100.0);

  // Decode trace of the first kept voxel.
  for (const VoxelRecord& rec : vqrf.Records()) {
    if (!rec.kept) continue;
    const Vec3i p = vqrf.Dims().Unflatten(rec.index);
    const int k = codec.Partition().SubgridOf(p);
    const u32 slot = SpatialHash(p, config.spnerf.table_size);
    DecodeCounters counters;
    const VoxelData d = codec.Decode(p, &counters);
    std::printf("\ndecode trace for voxel (%d, %d, %d):\n", p.x, p.y, p.z);
    std::printf("  1. bitmap[%llu] = 1 (non-zero, not masked)\n",
                static_cast<unsigned long long>(rec.index));
    std::printf("  2. subgrid k = floor(%d / %d) = %d\n", p.x,
                codec.Partition().Width(), k);
    std::printf("  3. h(p) = (x*1 ^ y*2654435761 ^ z*805459861) mod %u = %u\n",
                config.spnerf.table_size, slot);
    std::printf("  4. unified index >= codebook size %d -> true voxel grid "
                "slot\n",
                vqrf.GetCodebook().Size());
    std::printf("  5. dequantized density %.3f, feature[0] %.4f\n", d.density,
                d.features[0]);
    break;
  }

  // Aggregate decode traffic of one rendered view, collected through the
  // tile engine's parallel counter shards — the unit-activity mix the SGPU
  // sees over a frame.
  SpNeRFFieldSource source(codec, /*fp16_tiu=*/false,
                           /*collect_counters=*/false);
  RenderJob job;
  job.source = &source;
  job.mlp = &pipeline->GetMlp();
  job.camera = pipeline->MakeCamera(96, 96);
  job.options = pipeline->RenderOptionsWithSkip();
  job.collect_stats = true;
  const RenderResult r = pipeline->MakeEngine().Render(job);
  const DecodeCounters& dc = r.counters;
  const double q = dc.queries ? static_cast<double>(dc.queries) : 1.0;
  std::printf("\ndecode traffic over a 96x96 view (%.1f ms):\n", r.wall_ms);
  std::printf("  vertex queries : %llu\n",
              static_cast<unsigned long long>(dc.queries));
  std::printf("  bitmap zero    : %5.1f%%\n",
              100.0 * static_cast<double>(dc.bitmap_zero) / q);
  std::printf("  empty slot     : %5.1f%%\n",
              100.0 * static_cast<double>(dc.empty_slot) / q);
  std::printf("  codebook hits  : %5.1f%%\n",
              100.0 * static_cast<double>(dc.codebook_hits) / q);
  std::printf("  true-grid hits : %5.1f%%\n",
              100.0 * static_cast<double>(dc.true_grid_hits) / q);
  return 0;
}
