// Deployment flow: compress a scene on the "host", save the VQRF package to
// disk, reload it as a "device" would, run SpNeRF preprocessing there, and
// verify the online decode is bit-identical — while reporting the package
// size against the restored-grid footprint the original VQRF flow needs.
//
// Usage: ./model_package [scene=hotdog] [res=128] [out=hotdog.spnf]
#include <cstdio>

#include "common/config.hpp"
#include "common/units.hpp"
#include "core/pipeline_repository.hpp"
#include "grid/vqrf_io.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const Config args = Config::FromArgs(argc, argv);

  PipelineConfig config;
  config.scene_id = SceneFromName(args.GetString("scene", "hotdog"));
  config.dataset.resolution_override = args.GetInt("res", 128);
  const std::string path =
      args.GetString("out", std::string(SceneName(config.scene_id)) + ".spnf");

  // --- host side: build + compress + save ---
  std::printf("[host] building and compressing '%s'...\n",
              SceneName(config.scene_id));
  const std::shared_ptr<const ScenePipeline> host =
      PipelineRepository::Global().Acquire(config);
  const VqrfModel& model = *host->Dataset().vqrf;
  SaveVqrfModel(model, path);
  std::printf("[host] wrote %s: %llu records, codebook %d, kept %llu\n",
              path.c_str(),
              static_cast<unsigned long long>(model.NonZeroCount()),
              model.GetCodebook().Size(),
              static_cast<unsigned long long>(model.KeptCount()));

  // --- device side: load + preprocess + decode ---
  std::printf("[device] loading package...\n");
  const VqrfModel loaded = LoadVqrfModel(path);
  const SpNeRFModel codec = SpNeRFModel::Preprocess(loaded, config.spnerf);

  // Verify the device decode against the host's records.
  u64 checked = 0, mismatched = 0;
  for (const VoxelRecord& rec : model.Records()) {
    const VoxelData host_value = model.DecodeRecord(rec);
    const VoxelData device_value = codec.Decode(loaded.Dims().Unflatten(rec.index));
    ++checked;
    if (host_value.density != device_value.density) ++mismatched;
  }
  // Collisions make a few lookups alias — report, don't hide.
  std::printf("[device] decoded %llu voxels, %llu differ from host records "
              "(hash-collision aliases: %.3f%%)\n",
              static_cast<unsigned long long>(checked),
              static_cast<unsigned long long>(mismatched),
              100.0 * codec.NonZeroAliasRate());

  std::printf("\nfootprints:\n");
  std::printf("  package on disk           : %s\n",
              FormatBytes(model.CompressedBytes()).c_str());
  std::printf("  SpNeRF rendering memory   : %s\n",
              FormatBytes(codec.TotalBytes()).c_str());
  std::printf("  original VQRF restore path: %s (%.1fx larger)\n",
              FormatBytes(model.RestoredBytes()).c_str(),
              static_cast<double>(model.RestoredBytes()) /
                  static_cast<double>(codec.TotalBytes()));
  std::remove(path.c_str());
  return 0;
}
