// Design-space exploration with the cycle simulator: how frame rate, power
// and area move as the systolic array, SGPU lane count and DRAM generation
// change — the study an architect would run before committing to the
// paper's 64x64/16-lane/LPDDR4-3200 design point.
//
// Usage: ./design_space [scene=lego] [res=128]
#include <cstdio>

#include "common/config.hpp"
#include "common/units.hpp"
#include "core/pipeline_repository.hpp"
#include "sim/accelerator.hpp"

namespace {

void Report(const char* label, const spnerf::SimResult& r) {
  std::printf("  %-28s %8.2f fps  %7.2f W  %6.2f mm^2  %-12s %5.2f FPS/W\n",
              label, r.fps, r.power.total_w, r.area.total_mm2,
              r.bottleneck.c_str(), r.fps / r.power.total_w);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spnerf;
  const Config args = Config::FromArgs(argc, argv);

  PipelineConfig config;
  config.scene_id = SceneFromName(args.GetString("scene", "lego"));
  config.dataset.resolution_override = args.GetInt("res", 128);

  std::printf("measuring workload for '%s'...\n", SceneName(config.scene_id));
  const std::shared_ptr<const ScenePipeline> pipeline =
      PipelineRepository::Global().Acquire(config);
  const FrameWorkload w = pipeline->MeasureWorkload();
  std::printf("frame: %llu samples, %llu MLP evals, tables %s\n\n",
              static_cast<unsigned long long>(w.samples),
              static_cast<unsigned long long>(w.mlp_evals),
              FormatBytes(w.table_bytes).c_str());

  std::printf("systolic array sweep (16 SGPU lanes, LPDDR4-3200):\n");
  for (int dim : {16, 32, 64, 128}) {
    AcceleratorConfig cfg;
    cfg.inventory.systolic_rows = dim;
    cfg.inventory.systolic_cols = dim;
    cfg.systolic.rows = dim;
    cfg.systolic.cols = dim;
    char label[64];
    std::snprintf(label, sizeof(label), "%dx%d MAC array", dim, dim);
    Report(label, AcceleratorSim(cfg).SimulateFrame(w));
  }

  std::printf("\nSGPU lane sweep (64x64 array):\n");
  for (int lanes : {4, 8, 16, 32}) {
    AcceleratorConfig cfg;
    cfg.inventory.sgpu_lanes = lanes;
    char label[64];
    std::snprintf(label, sizeof(label), "%d lookup lanes", lanes);
    Report(label, AcceleratorSim(cfg).SimulateFrame(w));
  }

  std::printf("\nDRAM generation sweep (paper design point otherwise):\n");
  {
    AcceleratorConfig cfg;
    cfg.dram = Lpddr4_1600();
    Report("LPDDR4-1600 (17 GB/s)", AcceleratorSim(cfg).SimulateFrame(w));
  }
  {
    AcceleratorConfig cfg;
    cfg.dram = Lpddr4_3200();
    Report("LPDDR4-3200 (59.7 GB/s)", AcceleratorSim(cfg).SimulateFrame(w));
  }
  {
    AcceleratorConfig cfg;
    cfg.dram = Lpddr5_102();
    Report("LPDDR5 (102.4 GB/s)", AcceleratorSim(cfg).SimulateFrame(w));
  }

  std::printf("\npaper design point: 64x64 array, 16 lanes, LPDDR4-3200 -> "
              "67.56 fps @ 3 W @ 7.7 mm^2\n");
  return 0;
}
