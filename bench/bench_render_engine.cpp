// Render-engine scaling bench: an N-view orbit sweep with full statistics
// collection, rendered through the batched tile scheduler at 1 worker (the
// seed's stats-on sequential behaviour) and at the configured worker count.
// The speedup row is the headline number the engine refactor targets: the
// seed dropped to one core whenever RenderStats were requested.
//
// Usage: ./bench_render_engine [scene=lego] [res=64] [views=8] [size=160]
//        [threads=0]
#include "bench/bench_util.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const Config args = Config::FromArgs(argc, argv);

  PipelineConfig config;
  config.scene_id = SceneFromName(args.GetString("scene", "lego"));
  config.dataset.resolution_override = args.GetInt("res", 64);
  const int views = args.GetInt("views", 8);
  const int size = args.GetInt("size", 160);
  const unsigned threads = static_cast<unsigned>(args.GetInt("threads", 0));
  // threads=N may exceed the detected core count (which cgroup-limited
  // containers under-report); the engine then builds a dedicated pool of
  // that size. The default uses the global pool.
  const unsigned pool_workers = ThreadPool::Global().WorkerCount();
  const unsigned parallel_workers = threads ? threads : pool_workers;

  bench::PrintHeader("RenderEngine", "stats-on orbit sweep scaling");
  std::printf("scene '%s' at %d^3, %d views of %dx%d, pool of %u workers\n",
              SceneName(config.scene_id), config.dataset.resolution_override,
              views, size, size, pool_workers);

  const std::shared_ptr<const ScenePipeline> pipeline =
      PipelineRepository::Global().Acquire(config);
  SpNeRFFieldSource source(pipeline->Codec(), config.render.fp16_mlp,
                           /*collect_counters=*/false);

  std::vector<RenderJob> jobs;
  for (int v = 0; v < views; ++v) {
    RenderJob job;
    job.source = &source;
    job.mlp = &pipeline->GetMlp();
    job.camera = pipeline->MakeCamera(size, size, v, views);
    job.options = pipeline->RenderOptionsWithSkip();
    job.collect_stats = true;
    jobs.push_back(job);
  }

  bench::JsonReport json("render_engine");
  const auto run = [&](const char* name, unsigned workers, bool wavefront) {
    for (RenderJob& job : jobs) job.options.wavefront = wavefront;
    RenderEngineOptions opts;
    opts.max_threads = workers;
    const bench::WallTimer timer;
    const std::vector<RenderResult> results =
        RenderEngine(opts).RenderBatch(jobs);
    const double wall_ms = timer.ElapsedMs();
    u64 rays = 0, evals = 0, queries = 0;
    for (const RenderResult& r : results) {
      rays += r.stats.rays;
      evals += r.stats.mlp_evals;
      queries += r.counters.queries;
    }
    std::printf("%-14s %2u workers: %8.1f ms  (%llu rays, %llu MLP evals, "
                "%llu decodes)\n",
                name, workers, wall_ms, static_cast<unsigned long long>(rays),
                static_cast<unsigned long long>(evals),
                static_cast<unsigned long long>(queries));
    json.Add(name, wall_ms, workers);
    return wall_ms;
  };

  bench::PrintRule();
  // "sequential"/"parallel" keep their historical names (and are now the
  // wavefront path, the production default); the scalar per-ray reference
  // runs at both worker counts so the wavefront-vs-scalar ratio is tracked
  // per commit. The ratio entries store the ratio itself in the wall_ms
  // field (>1 means wavefront is faster; tracked, not gated — 1-core CI
  // measures small fronts).
  const double seq_ms = run("sequential", 1, /*wavefront=*/true);
  const double par_ms = run("parallel", parallel_workers, /*wavefront=*/true);
  const double scalar_seq_ms = run("scalar[1t]", 1, /*wavefront=*/false);
  const double scalar_par_ms =
      run("scalar[par]", parallel_workers, /*wavefront=*/false);
  bench::PrintRule();
  std::printf("speedup: %.2fx on %u workers (target: >= 4x on 8)\n",
              seq_ms / par_ms, parallel_workers);
  std::printf("wavefront vs scalar: %.2fx at 1 worker, %.2fx at %u workers\n",
              scalar_seq_ms / seq_ms, scalar_par_ms / par_ms,
              parallel_workers);
  json.Add("ratio/wavefront-vs-scalar[1t]", scalar_seq_ms / seq_ms, 1);
  json.Add("ratio/wavefront-vs-scalar[par]", scalar_par_ms / par_ms,
           parallel_workers);
  // Path-tagged twins of the ratios: the name says which SIMD kernels the
  // wavefront runs dispatched on (also in the "host" block), so mixed-host
  // trajectories stay interpretable.
  const std::string simd_tag = simd::PathName(simd::ActivePath());
  json.Add("ratio/wavefront-" + simd_tag + "-vs-scalar[1t]",
           scalar_seq_ms / seq_ms, 1);
  json.Add("ratio/wavefront-" + simd_tag + "-vs-scalar[par]",
           scalar_par_ms / par_ms, parallel_workers);

  // Tracing-overhead gate: the parallel wavefront sweep re-run with full
  // tracing off and on. The ratio (wall_off / wall_full, so 1.0 = free,
  // < 0.95 would breach the observability contract) lands in the obs block
  // and, per repo convention, in an entries row.
  {
    const obs::TraceLevel prev = obs::SetActiveTraceLevel(obs::TraceLevel::kOff);
    const double off_ms = run("parallel[trace=off]", parallel_workers,
                              /*wavefront=*/true);
    obs::SetActiveTraceLevel(obs::TraceLevel::kFull);
    const double full_ms = run("parallel[trace=full]", parallel_workers,
                               /*wavefront=*/true);
    obs::SetActiveTraceLevel(prev);
    if (full_ms > 0.0) {
      const double ratio = off_ms / full_ms;
      std::printf("tracing overhead: off %.1f ms -> full %.1f ms (%.3fx)\n",
                  off_ms, full_ms, ratio);
      json.AddObsRatio("render/trace-overhead[full]", ratio);
      json.Add("render/trace-overhead", ratio, parallel_workers);
    }
  }

  bench::AddBuildTimings(json);
  json.CaptureObsSnapshot();
  return 0;
}
