// Render-engine scaling bench: an N-view orbit sweep with full statistics
// collection, rendered through the batched tile scheduler at 1 worker (the
// seed's stats-on sequential behaviour) and at the configured worker count.
// The speedup row is the headline number the engine refactor targets: the
// seed dropped to one core whenever RenderStats were requested.
//
// Usage: ./bench_render_engine [scene=lego] [res=64] [views=8] [size=160]
//        [threads=0]
#include "bench/bench_util.hpp"
#include "core/pipeline.hpp"
#include "render/skip_mode.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const Config args = Config::FromArgs(argc, argv);

  PipelineConfig config;
  config.scene_id = SceneFromName(args.GetString("scene", "lego"));
  config.dataset.resolution_override = args.GetInt("res", 64);
  const int views = args.GetInt("views", 8);
  const int size = args.GetInt("size", 160);
  const unsigned threads = static_cast<unsigned>(args.GetInt("threads", 0));
  // threads=N may exceed the detected core count (which cgroup-limited
  // containers under-report); the engine then builds a dedicated pool of
  // that size. The default uses the global pool.
  const unsigned pool_workers = ThreadPool::Global().WorkerCount();
  const unsigned parallel_workers = threads ? threads : pool_workers;

  bench::PrintHeader("RenderEngine", "stats-on orbit sweep scaling");
  std::printf("scene '%s' at %d^3, %d views of %dx%d, pool of %u workers\n",
              SceneName(config.scene_id), config.dataset.resolution_override,
              views, size, size, pool_workers);

  const std::shared_ptr<const ScenePipeline> pipeline =
      PipelineRepository::Global().Acquire(config);
  SpNeRFFieldSource source(pipeline->Codec(), config.render.fp16_mlp,
                           /*collect_counters=*/false);

  std::vector<RenderJob> jobs;
  for (int v = 0; v < views; ++v) {
    RenderJob job;
    job.source = &source;
    job.mlp = &pipeline->GetMlp();
    job.camera = pipeline->MakeCamera(size, size, v, views);
    job.options = pipeline->RenderOptionsWithSkip();
    job.collect_stats = true;
    jobs.push_back(job);
  }

  bench::JsonReport json("render_engine");
  const auto run = [&](const char* name, unsigned workers, bool wavefront) {
    for (RenderJob& job : jobs) job.options.wavefront = wavefront;
    RenderEngineOptions opts;
    opts.max_threads = workers;
    const bench::WallTimer timer;
    const std::vector<RenderResult> results =
        RenderEngine(opts).RenderBatch(jobs);
    const double wall_ms = timer.ElapsedMs();
    u64 rays = 0, evals = 0, queries = 0;
    for (const RenderResult& r : results) {
      rays += r.stats.rays;
      evals += r.stats.mlp_evals;
      queries += r.counters.queries;
    }
    std::printf("%-14s %2u workers: %8.1f ms  (%llu rays, %llu MLP evals, "
                "%llu decodes)\n",
                name, workers, wall_ms, static_cast<unsigned long long>(rays),
                static_cast<unsigned long long>(evals),
                static_cast<unsigned long long>(queries));
    json.Add(name, wall_ms, workers);
    return wall_ms;
  };

  bench::PrintRule();
  // "sequential"/"parallel" keep their historical names (and are now the
  // wavefront path, the production default); the scalar per-ray reference
  // runs at both worker counts so the wavefront-vs-scalar ratio is tracked
  // per commit. The ratio entries store the ratio itself in the wall_ms
  // field (>1 means wavefront is faster; tracked, not gated — 1-core CI
  // measures small fronts).
  const double seq_ms = run("sequential", 1, /*wavefront=*/true);
  const double par_ms = run("parallel", parallel_workers, /*wavefront=*/true);
  const double scalar_seq_ms = run("scalar[1t]", 1, /*wavefront=*/false);
  const double scalar_par_ms =
      run("scalar[par]", parallel_workers, /*wavefront=*/false);
  bench::PrintRule();
  std::printf("speedup: %.2fx on %u workers (target: >= 4x on 8)\n",
              seq_ms / par_ms, parallel_workers);
  std::printf("wavefront vs scalar: %.2fx at 1 worker, %.2fx at %u workers\n",
              scalar_seq_ms / seq_ms, scalar_par_ms / par_ms,
              parallel_workers);
  json.Add("ratio/wavefront-vs-scalar[1t]", scalar_seq_ms / seq_ms, 1);
  json.Add("ratio/wavefront-vs-scalar[par]", scalar_par_ms / par_ms,
           parallel_workers);
  // Path-tagged twins of the ratios: the name says which SIMD kernels the
  // wavefront runs dispatched on (also in the "host" block), so mixed-host
  // trajectories stay interpretable.
  const std::string simd_tag = simd::PathName(simd::ActivePath());
  json.Add("ratio/wavefront-" + simd_tag + "-vs-scalar[1t]",
           scalar_seq_ms / seq_ms, 1);
  json.Add("ratio/wavefront-" + simd_tag + "-vs-scalar[par]",
           scalar_par_ms / par_ms, parallel_workers);

  // Tracing-overhead gate: the parallel wavefront sweep re-run with full
  // tracing off and on. The ratio (wall_off / wall_full, so 1.0 = free,
  // < 0.95 would breach the observability contract) lands in the obs block
  // and, per repo convention, in an entries row.
  {
    const obs::TraceLevel prev = obs::SetActiveTraceLevel(obs::TraceLevel::kOff);
    const double off_ms = run("parallel[trace=off]", parallel_workers,
                              /*wavefront=*/true);
    obs::SetActiveTraceLevel(obs::TraceLevel::kFull);
    const double full_ms = run("parallel[trace=full]", parallel_workers,
                               /*wavefront=*/true);
    obs::SetActiveTraceLevel(prev);
    if (full_ms > 0.0) {
      const double ratio = off_ms / full_ms;
      std::printf("tracing overhead: off %.1f ms -> full %.1f ms (%.3fx)\n",
                  off_ms, full_ms, ratio);
      json.AddObsRatio("render/trace-overhead[full]", ratio);
      json.Add("render/trace-overhead", ratio, parallel_workers);
    }
  }

  // Octree-vs-flat empty-space-skipping sweep over scene sparsity. The two
  // marchers are bit-identical in output (enforced by test_wavefront), so
  // the only interesting number is wall time: the octree amortises runs of
  // empty coarse cells into one shallow descent per region, which pays off
  // most in mostly-empty scenes and must at least break even in dense
  // ones. The plain ratio names carry the acceptance number (from the
  // mostly-empty scene); sparsity-tagged twins keep the full sweep.
  {
    struct SweepScene {
      SceneId id;
      const char* sparsity;
      bool headline;  // plain-named ratios come from this scene
    };
    const SweepScene sweep[] = {
        {SceneId::kMic, "mostly-empty", true},
        {SceneId::kLego, "half", false},
        {SceneId::kShip, "dense", false},
    };
    const int sweep_views = 2;  // ratio denominators, not scaling curves
    bench::PrintRule();
    std::printf("octree-vs-flat skip sweep (%d views of %dx%d):\n",
                sweep_views, size, size);
    for (const SweepScene& s : sweep) {
      PipelineConfig sc = config;
      sc.scene_id = s.id;
      // Per-fine-voxel occupancy (factor 1): the regime a hierarchical
      // skip structure targets — at the default factor 4 a 64^3 scene has
      // only 16^3 coarse cells and empty-space marching is a rounding
      // error next to decode cost, so the flat-vs-octree difference would
      // drown in timer noise.
      sc.coarse_factor = 1;
      const std::shared_ptr<const ScenePipeline> p =
          PipelineRepository::Global().Acquire(sc);
      SpNeRFFieldSource sweep_source(p->Codec(), sc.render.fp16_mlp,
                                     /*collect_counters=*/false);
      std::vector<RenderJob> sweep_jobs;
      for (int v = 0; v < sweep_views; ++v) {
        RenderJob job;
        job.source = &sweep_source;
        job.mlp = &p->GetMlp();
        job.camera = p->MakeCamera(size, size, v, views);
        job.options = p->RenderOptionsWithSkip();
        job.options.wavefront = true;
        job.collect_stats = true;
        sweep_jobs.push_back(job);
      }
      u64 skips = 0, steps = 0;
      const auto timed = [&](skip::Mode mode, unsigned workers) {
        const skip::Mode prev = skip::SetActiveMode(mode);
        RenderEngineOptions opts;
        opts.max_threads = workers;
        // Min-of-k, adaptive k: the ratios below divide two short runs, so
        // a single scheduling hiccup would otherwise dominate the reported
        // number. Small smoke configs (res=48, 64x64 views) finish in tens
        // of ms — keep repeating until ~300 ms of samples accumulate so the
        // minimum is a real floor, not a lucky draw.
        double best_ms = 0.0, spent_ms = 0.0;
        for (int rep = 0; rep < 2 || (spent_ms < 300.0 && rep < 8); ++rep) {
          const bench::WallTimer timer;
          const std::vector<RenderResult> results =
              RenderEngine(opts).RenderBatch(sweep_jobs);
          const double wall_ms = timer.ElapsedMs();
          spent_ms += wall_ms;
          if (rep == 0 || wall_ms < best_ms) best_ms = wall_ms;
          skips = steps = 0;
          for (const RenderResult& r : results) {
            skips += r.stats.coarse_skips;
            steps += r.stats.steps;
          }
        }
        skip::SetActiveMode(prev);
        return best_ms;
      };
      const double flat_1t = timed(skip::Mode::kFlat, 1);
      const double tree_1t = timed(skip::Mode::kOctree, 1);
      const double flat_par = timed(skip::Mode::kFlat, parallel_workers);
      const double tree_par = timed(skip::Mode::kOctree, parallel_workers);
      // Skip rate: fraction of march iterations resolved by the skipping
      // structure rather than sampled (identical for both modes by the
      // bit-exactness contract; reported once per sparsity class).
      const double skip_rate =
          skips + steps ? static_cast<double>(skips) /
                              static_cast<double>(skips + steps)
                        : 0.0;
      const double r1 = tree_1t > 0.0 ? flat_1t / tree_1t : 0.0;
      const double rp = tree_par > 0.0 ? flat_par / tree_par : 0.0;
      std::printf("  %-12s (%s): skip-rate %.3f, octree-vs-flat %.2fx [1t] "
                  "%.2fx [par]\n",
                  SceneName(s.id), s.sparsity, skip_rate, r1, rp);
      const std::string tag = std::string("[") + s.sparsity + "]";
      json.Add("render/skip-rate" + tag, skip_rate, 1);
      json.Add("ratio/octree-vs-flat" + tag + "[1t]", r1, 1);
      json.Add("ratio/octree-vs-flat" + tag + "[par]", rp, parallel_workers);
      if (s.headline) {
        json.Add("render/skip-rate", skip_rate, 1);
        json.Add("ratio/octree-vs-flat[1t]", r1, 1);
        json.Add("ratio/octree-vs-flat[par]", rp, parallel_workers);
      }
    }
  }

  bench::AddBuildTimings(json);
  json.CaptureObsSnapshot();
  return 0;
}
