// Ablation: bitmap masking and collision policy.
// Separates the two error channels of the hash decode: zero-voxel aliasing
// (fixed by masking) and non-zero/non-zero collisions (residual), and shows
// the insertion policy barely matters.
#include "bench/bench_util.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  const Config c = Config::FromArgs(argc, argv);
  if (!c.Has("scenes")) {
    cfg.scenes = {SceneId::kChair, SceneId::kDrums, SceneId::kShip};
  }

  bench::PrintHeader("Ablation", "bitmap masking & collision policy");
  bench::JsonReport json("ablation_masking");
  std::printf("%-12s %-12s %10s %10s %10s\n", "scene", "policy", "pre-mask",
              "post-mask", "alias");
  bench::PrintRule();

  for (SceneId id : cfg.scenes) {
    for (CollisionPolicy policy :
         {CollisionPolicy::kKeepFirst, CollisionPolicy::kOverwrite}) {
      PipelineConfig pc = cfg.MakePipelineConfig(id);
      pc.spnerf.collision_policy = policy;
      const std::shared_ptr<const ScenePipeline> p =
          PipelineRepository::Global().Acquire(pc);
      const Camera cam =
          p->MakeCamera(cfg.psnr_image_size, cfg.psnr_image_size);
      const Image gt = p->RenderGroundTruth(cam);
      const Image pre = p->RenderSpnerf(cam, /*bitmap_masking=*/false);
      const Image post = p->RenderSpnerf(cam, /*bitmap_masking=*/true);
      std::printf("%-12s %-12s %9.2f %9.2f %9.2f%%\n", SceneName(id),
                  policy == CollisionPolicy::kKeepFirst ? "keep-first"
                                                        : "overwrite",
                  Psnr(gt, pre), Psnr(gt, post),
                  p->Codec().NonZeroAliasRate() * 100.0);
    }
  }
  bench::PrintRule();
  std::printf("takeaway: masking recovers tens of dB; the insertion policy "
              "only shuffles which colliding point survives\n");
  bench::AddBuildTimings(json);
  return 0;
}
