// Serving benchmark: drives the RenderService with the deterministic
// open-loop LoadGenerator and reports throughput and tail latency
// (p50/p95/p99) to BENCH_serving.json.
//
// Two phases over a warm asset cache:
//   * unsaturated — offered load well below measured capacity. Nothing may
//     be shed here; any rejection is a bug and fails the process (CI runs
//     this as a smoke gate).
//   * saturated — offered load far above capacity with a small queue. The
//     service must shed load via explicit rejections/expiries while the
//     queue stays bounded, instead of growing an unbounded backlog.
//
// Overrides: requests=N scenes=N res=R img=S threads=N capacity=N batch=N
//            seed=S rate=R (unsaturated offered rate in requests/s; the
//            saturated phase always offers 16x the unsaturated rate.
//            0 = derive both from measured closed-loop frame latency)
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "serve/load_generator.hpp"

namespace {

using namespace spnerf;

struct PhaseResult {
  ServiceStatsSnapshot stats;
  double wall_ms = 0.0;
};

PhaseResult RunPhase(const LoadGeneratorOptions& load,
                     const RenderServiceOptions& service_opts) {
  RenderService service(service_opts);
  const ReplayResult replay =
      ReplayTrace(service, LoadGenerator(load).GenerateTrace());
  service.Drain();
  PhaseResult r;
  r.stats = service.Stats();
  r.wall_ms = replay.wall_ms;
  return r;
}

void PrintPhase(const char* name, const PhaseResult& r) {
  const LatencySample& lat = r.stats.total_latency;
  std::printf("%-12s %9.1f rps | p50 %7.2f ms  p95 %7.2f ms  p99 %7.2f ms\n",
              name, r.stats.ThroughputRps(), lat.Percentile(50),
              lat.Percentile(95), lat.Percentile(99));
  std::printf("             completed %llu, rejected %llu, expired %llu | "
              "queue peak %zu | mean batch %.2f\n",
              static_cast<unsigned long long>(r.stats.completed),
              static_cast<unsigned long long>(r.stats.rejected),
              static_cast<unsigned long long>(r.stats.expired),
              r.stats.queue_peak, r.stats.MeanBatchSize());
}

}  // namespace

int main(int argc, char** argv) {
  const Config args = Config::FromArgs(argc, argv);
  const auto requests =
      static_cast<std::size_t>(args.GetInt("requests", 400));
  const int nscenes = args.GetInt("scenes", 3);
  const int res = args.GetInt("res", 64);
  const int img = args.GetInt("img", 48);
  const auto threads = static_cast<unsigned>(args.GetInt("threads", 0));
  const auto capacity = static_cast<std::size_t>(args.GetInt("capacity", 64));
  const auto max_batch = static_cast<std::size_t>(args.GetInt("batch", 8));
  const auto seed = static_cast<u64>(args.GetInt("seed", 2025));
  const double rate_override = args.GetDouble("rate", 0.0);

  bench::PrintHeader("serving",
                     "RenderService throughput and tail latency under load");
  bench::JsonReport json("serving");
  const unsigned effective_threads =
      threads ? threads : ThreadPool::Global().WorkerCount();

  std::vector<SceneId> scenes = AllScenes();
  scenes.resize(static_cast<std::size_t>(
      std::max(1, std::min(nscenes, kSceneCount))));

  RenderRequest base;
  base.config.dataset.resolution_override = res;
  base.image_width = base.image_height = img;

  RenderServiceOptions service_opts;
  service_opts.queue_capacity = capacity;
  service_opts.max_batch = max_batch;
  service_opts.engine.max_threads = threads;

  // Warm every scene's assets through the service itself, then measure
  // closed-loop per-frame latency (one request in flight at a time) to
  // size the offered load.
  bench::WallTimer warm_timer;
  double frame_ms = 0.0;
  {
    RenderService service(service_opts);
    for (int round = 0; round < 2; ++round) {
      double sum = 0.0;
      for (SceneId id : scenes) {
        RenderRequest r = base;
        r.config.scene_id = id;
        sum += service.Submit(r).get().total_ms;
      }
      frame_ms = sum / static_cast<double>(scenes.size());  // last round wins
    }
  }
  std::printf("warmup: %zu scene(s) built/loaded, closed-loop frame latency "
              "%.2f ms\n", scenes.size(), frame_ms);
  json.Add("serve/warmup", warm_timer.ElapsedMs(), effective_threads);
  bench::PrintRule();

  LoadGeneratorOptions load;
  load.seed = seed;
  load.request_count = requests;
  load.scenes = scenes;
  load.hot_scene_count = std::max<std::size_t>(1, scenes.size() / 2);
  load.base = base;

  // A single dispatcher serves ~1000/frame_ms requests per second; offer a
  // quarter of that (no shedding tolerated), then four times it (shedding
  // required).
  const double capacity_rps = 1000.0 / std::max(frame_ms, 1e-3);
  load.arrival_rate_rps =
      rate_override > 0.0 ? rate_override : 0.25 * capacity_rps;
  load.deadline_fraction = 0.0;  // nothing may expire when unsaturated
  const PhaseResult unsat = RunPhase(load, service_opts);
  PrintPhase("unsaturated", unsat);
  json.AddPercentiles("serve/unsaturated",
                      unsat.stats.total_latency.Percentile(50),
                      unsat.stats.total_latency.Percentile(95),
                      unsat.stats.total_latency.Percentile(99),
                      unsat.stats.ThroughputRps(), effective_threads);

  load.arrival_rate_rps =
      rate_override > 0.0 ? 16.0 * rate_override : 4.0 * capacity_rps;
  load.deadline_fraction = 0.3;
  load.deadline_ms = 8.0 * frame_ms;
  const PhaseResult sat = RunPhase(load, service_opts);
  PrintPhase("saturated", sat);
  json.AddPercentiles("serve/saturated",
                      sat.stats.total_latency.Percentile(50),
                      sat.stats.total_latency.Percentile(95),
                      sat.stats.total_latency.Percentile(99),
                      sat.stats.ThroughputRps(), effective_threads);

  bench::PrintRule();
  bench::AddBuildTimings(json);

  if (unsat.stats.rejected + unsat.stats.expired > 0) {
    std::fprintf(stderr,
                 "ERROR: unsaturated run shed %llu request(s) — admission "
                 "control dropped load the service had capacity for\n",
                 static_cast<unsigned long long>(unsat.stats.rejected +
                                                 unsat.stats.expired));
    return 1;
  }
  if (sat.stats.queue_peak > capacity) {
    std::fprintf(stderr,
                 "ERROR: queue grew past its bound (%zu > %zu)\n",
                 sat.stats.queue_peak, capacity);
    return 1;
  }
  if (sat.stats.rejected == 0) {
    std::printf("note: saturated run shed nothing — offered rate likely too "
                "low for this machine\n");
  }
  return 0;
}
