// Serving benchmark: drives the RenderService with the deterministic
// open-loop LoadGenerator and reports throughput, tail latency
// (p50/p95/p99 — aggregate and per priority class) and request outcomes
// (completed/rejected/expired) to BENCH_serving.json.
//
// Three phases over a warm asset cache:
//   * unsaturated — offered load well below measured capacity. Nothing may
//     be shed here; any rejection is a bug and fails the process (CI runs
//     this as a smoke gate).
//   * saturated — offered load far above capacity (8x the measured warmup
//     service rate, >= 200 requests) with a small queue and the
//     interactive-heavy deadline trace. Replayed twice at the identical
//     offered load: fixed quality (ladder off — the service must shed via
//     explicit rejections/expiries while the queue stays bounded) and with
//     the adaptive quality ladder on (degrade-before-drop). The ladder run
//     must shed strictly less than the fixed run whenever the fixed run
//     sheds at all; both shed rates land in BENCH_serving.json as
//     serve/shed-rate[fixed|ladder], next to the per-rung completion
//     distribution.
//   * PSNR-vs-deadline curve — each quality rung rendered directly through
//     the pipeline on the lead scene and compared against the rung-0
//     reference (PSNR/SSIM + measured per-frame wall time), so the
//     quality/cost tradeoff the governor trades along is a tracked
//     trajectory (quality/rung<r> entries).
//   * multi-scene saturated — the same overload spread uniformly across
//     every scene (distinct batch keys), replayed once with
//     max_inflight_batches=1 (the serial dispatcher) and once with the
//     configured concurrency, to measure what overlapping distinct-key
//     engine batches on one pool buys in throughput.
//
//   * batch-size-1 dispatch sweep — closed-loop single-request batches
//     (max_batch=1, small frames) replayed under SPNF_DISPATCH=locked and
//     =lockfree on fresh services. Small-batch serving is where
//     per-request dispatch overhead is the largest slice of latency, so
//     the throughput ratio (ratio/lockfree-vs-locked) is the lock-free
//     admission path's headline number, and the lock-free p50
//     submit->issue latency is recorded as serve/dispatch-overhead.
//
// Overrides: requests=N scenes=N res=R img=S threads=N capacity=N batch=N
//            inflight=N (max_inflight_batches for the concurrent phases)
//            seed=S rate=R (unsaturated offered rate in requests/s; the
//            saturated phases always offer 32x the unsaturated rate.
//            0 = derive both from measured closed-loop frame latency)
//            dimg=S (dispatch-sweep frame size) drequests=N (its length)
#include <algorithm>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/dispatch.hpp"
#include "core/pipeline.hpp"
#include "obs/exporters.hpp"
#include "render/field_source.hpp"
#include "render/quality.hpp"
#include "serve/load_generator.hpp"

namespace {

using namespace spnerf;

struct PhaseResult {
  ServiceStatsSnapshot stats;
  double wall_ms = 0.0;
};

PhaseResult RunPhase(const LoadGeneratorOptions& load,
                     const RenderServiceOptions& service_opts) {
  RenderService service(service_opts);
  const ReplayResult replay =
      ReplayTrace(service, LoadGenerator(load).GenerateTrace());
  service.Drain();
  PhaseResult r;
  r.stats = service.Stats();
  r.wall_ms = replay.wall_ms;
  return r;
}

void PrintPhase(const char* name, const PhaseResult& r) {
  const LatencySample& lat = r.stats.total_latency;
  std::printf("%-24s %9.1f rps | p50 %7.2f ms  p95 %7.2f ms  p99 %7.2f ms\n",
              name, r.stats.ThroughputRps(), lat.Percentile(50),
              lat.Percentile(95), lat.Percentile(99));
  std::printf("             completed %llu, rejected %llu, expired %llu | "
              "queue peak %zu | mean batch %.2f\n",
              static_cast<unsigned long long>(r.stats.completed),
              static_cast<unsigned long long>(r.stats.rejected),
              static_cast<unsigned long long>(r.stats.expired),
              r.stats.queue_peak, r.stats.MeanBatchSize());
  for (std::size_t c = 0; c < kPriorityClassCount; ++c) {
    const PriorityClassStats& cls = r.stats.by_class[c];
    if (cls.completed + cls.rejected + cls.expired == 0) continue;
    std::printf("             %-11s p50 %7.2f ms  p99 %7.2f ms | "
                "completed %llu, shed %llu\n",
                RequestPriorityName(static_cast<RequestPriority>(c)),
                cls.total_latency.Percentile(50),
                cls.total_latency.Percentile(99),
                static_cast<unsigned long long>(cls.completed),
                static_cast<unsigned long long>(cls.rejected + cls.expired));
  }
  u64 degraded = 0;
  for (std::size_t q = 1; q < kQualityRungCount; ++q) {
    degraded += r.stats.by_rung[q];
  }
  if (degraded > 0) {
    std::printf("             rungs");
    for (std::size_t q = 0; q < kQualityRungCount; ++q) {
      std::printf("  %s=%llu", QualityRungName(static_cast<QualityRung>(q)),
                  static_cast<unsigned long long>(r.stats.by_rung[q]));
    }
    std::printf("\n");
  }
}

/// Fraction of submitted requests the service shed (rejected + expired).
double ShedRate(const ServiceStatsSnapshot& s) {
  return s.submitted > 0
             ? static_cast<double>(s.rejected + s.expired) /
                   static_cast<double>(s.submitted)
             : 0.0;
}

/// Aggregate percentile + outcome-count entries, plus one percentile and
/// one count entry per priority class, so a priority inversion or a
/// class-skewed shedding regression shows in the per-commit trajectory.
void AddPhaseEntries(bench::JsonReport& json, const std::string& name,
                     const PhaseResult& r, unsigned threads) {
  const ServiceStatsSnapshot& s = r.stats;
  json.AddPercentiles(name, s.total_latency.Percentile(50),
                      s.total_latency.Percentile(95),
                      s.total_latency.Percentile(99), s.ThroughputRps(),
                      threads);
  json.AddCounts(name + "/outcomes", s.completed, s.rejected, s.expired,
                 threads);
  for (std::size_t c = 0; c < kPriorityClassCount; ++c) {
    const PriorityClassStats& cls = s.by_class[c];
    if (cls.completed + cls.rejected + cls.expired == 0) continue;
    const std::string cls_name =
        name + "/" + RequestPriorityName(static_cast<RequestPriority>(c));
    const double cls_rps =
        s.span_ms > 0.0
            ? static_cast<double>(cls.completed) * 1000.0 / s.span_ms
            : 0.0;
    json.AddPercentiles(cls_name, cls.total_latency.Percentile(50),
                        cls.total_latency.Percentile(95),
                        cls.total_latency.Percentile(99), cls_rps, threads);
    json.AddCounts(cls_name + "/outcomes", cls.completed, cls.rejected,
                   cls.expired, threads);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Config args = Config::FromArgs(argc, argv);
  const auto requests =
      static_cast<std::size_t>(args.GetInt("requests", 400));
  const int nscenes = args.GetInt("scenes", 3);
  const int res = args.GetInt("res", 64);
  const int img = args.GetInt("img", 48);
  const auto threads = static_cast<unsigned>(args.GetInt("threads", 0));
  const auto capacity = static_cast<std::size_t>(args.GetInt("capacity", 64));
  const auto max_batch = static_cast<std::size_t>(args.GetInt("batch", 8));
  const auto inflight = static_cast<std::size_t>(args.GetInt(
      "inflight", static_cast<int>(RenderServiceOptions{}.max_inflight_batches)));
  const auto seed = static_cast<u64>(args.GetInt("seed", 2025));
  const double rate_override = args.GetDouble("rate", 0.0);

  bench::PrintHeader("serving",
                     "RenderService throughput and tail latency under load");
  bench::JsonReport json("serving");
  const unsigned effective_threads =
      threads ? threads : ThreadPool::Global().WorkerCount();

  std::vector<SceneId> scenes = AllScenes();
  scenes.resize(static_cast<std::size_t>(
      std::max(1, std::min(nscenes, kSceneCount))));

  RenderRequest base;
  base.config.dataset.resolution_override = res;
  base.image_width = base.image_height = img;

  RenderServiceOptions service_opts;
  service_opts.queue_capacity = capacity;
  service_opts.max_batch = max_batch;
  service_opts.max_inflight_batches = inflight;
  service_opts.engine.max_threads = threads;

  // Warm every scene's assets through the service itself, then measure
  // closed-loop per-frame latency (one request in flight at a time) to
  // size the offered load.
  bench::WallTimer warm_timer;
  double frame_ms = 0.0;
  {
    RenderService service(service_opts);
    for (int round = 0; round < 2; ++round) {
      double sum = 0.0;
      for (SceneId id : scenes) {
        RenderRequest r = base;
        r.config.scene_id = id;
        sum += service.Submit(r).get().total_ms;
      }
      frame_ms = sum / static_cast<double>(scenes.size());  // last round wins
    }
  }
  std::printf("warmup: %zu scene(s) built/loaded, closed-loop frame latency "
              "%.2f ms\n", scenes.size(), frame_ms);
  json.Add("serve/warmup", warm_timer.ElapsedMs(), effective_threads);
  bench::PrintRule();

  LoadGeneratorOptions load;
  load.seed = seed;
  load.request_count = requests;
  load.scenes = scenes;
  load.hot_scene_count = std::max<std::size_t>(1, scenes.size() / 2);
  load.base = base;

  // The render path serves ~1000/frame_ms requests per second; offer a
  // quarter of that (no shedding tolerated), then four times it (shedding
  // required).
  const double capacity_rps = 1000.0 / std::max(frame_ms, 1e-3);
  load.arrival_rate_rps =
      rate_override > 0.0 ? rate_override : 0.25 * capacity_rps;
  load.deadline_fraction = 0.0;  // nothing may expire when unsaturated
  const PhaseResult unsat = RunPhase(load, service_opts);
  PrintPhase("unsaturated", unsat);
  AddPhaseEntries(json, "serve/unsaturated", unsat, effective_threads);

  // Saturated ladder comparison: the interactive-heavy deadline trace at
  // 8x the measured warmup service rate (guaranteed overload) with at
  // least 200 requests, replayed twice at the identical offered load —
  // fixed full quality vs the adaptive ladder. The comparison is the
  // tentpole gate: at equal load, degrading must strictly beat dropping.
  LoadGeneratorOptions sat_load = InteractiveHeavyTrace(frame_ms);
  sat_load.seed = seed;
  sat_load.request_count = std::max<std::size_t>(200, requests / 2);
  sat_load.scenes = scenes;
  sat_load.hot_scene_count = load.hot_scene_count;
  sat_load.base = base;
  sat_load.arrival_rate_rps =
      rate_override > 0.0 ? 32.0 * rate_override : 8.0 * capacity_rps;

  RenderServiceOptions ladder_opts = service_opts;
  ladder_opts.ladder.enabled = true;
  ladder_opts.ladder.default_cost_ms = frame_ms;

  const PhaseResult sat = RunPhase(sat_load, service_opts);
  PrintPhase("saturated[fixed]", sat);
  AddPhaseEntries(json, "serve/saturated", sat, effective_threads);

  const PhaseResult sat_ladder = RunPhase(sat_load, ladder_opts);
  PrintPhase("saturated[ladder]", sat_ladder);
  AddPhaseEntries(json, "serve/saturated[ladder]", sat_ladder,
                  effective_threads);
  for (std::size_t q = 0; q < kQualityRungCount; ++q) {
    json.AddCounts(
        std::string("serve/saturated[ladder]/rung") + std::to_string(q),
        sat_ladder.stats.by_rung[q], 0, 0, effective_threads);
  }
  // Shed-rate fractions ride the wall_ms field (repo convention for
  // ratio-valued entries): shed = (rejected + expired) / submitted.
  const double fixed_shed = ShedRate(sat.stats);
  const double ladder_shed = ShedRate(sat_ladder.stats);
  json.Add("serve/shed-rate[fixed]", fixed_shed, effective_threads);
  json.Add("serve/shed-rate[ladder]", ladder_shed, effective_threads);
  std::printf("degrade-before-drop: fixed shed %.1f%% -> ladder shed %.1f%% "
              "(%llu of %llu completions degraded)\n",
              100.0 * fixed_shed, 100.0 * ladder_shed,
              static_cast<unsigned long long>(
                  sat_ladder.stats.completed - sat_ladder.stats.by_rung[0]),
              static_cast<unsigned long long>(sat_ladder.stats.completed));
  bench::PrintRule();

  // PSNR-vs-deadline curve: each rung rendered directly through the lead
  // scene's pipeline and compared against the rung-0 reference. The wall
  // time next to each PSNR is the rung's measured per-frame cost — the
  // exact (quality, latency) frontier the governor trades along.
  {
    PipelineConfig quality_config = base.config;
    quality_config.scene_id = scenes.front();
    const std::shared_ptr<const ScenePipeline> pipeline =
        PipelineRepository::Global().Acquire(quality_config);
    const RenderOptions base_options = pipeline->RenderOptionsWithSkip();
    SpNeRFFieldSource source(pipeline->Codec(),
                             quality_config.render.fp16_mlp);
    RenderEngineOptions engine_opts;
    engine_opts.max_threads = threads;
    RenderEngine engine(engine_opts);
    Image reference;
    for (std::size_t q = 0; q < kQualityRungCount; ++q) {
      const auto rung = static_cast<QualityRung>(q);
      const int divisor = RungResolutionDivisor(rung);
      RenderJob job;
      job.source = &source;
      job.mlp = &pipeline->GetMlp();
      job.camera = pipeline->MakeCamera(ReducedDim(img, divisor),
                                        ReducedDim(img, divisor), 0,
                                        base.n_views);
      job.options = ApplyRung(base_options, rung);
      bench::WallTimer rung_timer;
      std::vector<RenderResult> results = engine.RenderBatch({job});
      const double rung_ms = rung_timer.ElapsedMs();
      Image image = divisor > 1
                        ? UpsampleBilinear(results.front().image, img, img)
                        : std::move(results.front().image);
      if (q == 0) reference = std::move(image);
      const bench::ImageQuality quality = bench::MeasureQuality(
          reference, q == 0 ? reference : image);
      std::printf("quality rung %zu (%-7s): PSNR %5.1f dB  SSIM %.4f  "
                  "%8.2f ms/frame\n",
                  q, QualityRungName(rung), quality.psnr_db, quality.ssim,
                  rung_ms);
      json.AddQuality("quality/rung" + std::to_string(q), quality.psnr_db,
                      quality.ssim, rung_ms, effective_threads);
    }
  }
  bench::PrintRule();

  // Multi-scene saturated sweep: the same overload spread uniformly over
  // every scene (every request draws from the full zoo slice, so distinct
  // batch keys dominate the queue), replayed with the serial dispatcher
  // and with concurrent in-flight batches. The throughput ratio is the
  // concurrent-region scheduler's headline serving win.
  LoadGeneratorOptions multi = load;
  multi.arrival_rate_rps =
      rate_override > 0.0 ? 16.0 * rate_override : 4.0 * capacity_rps;
  multi.deadline_fraction = 0.3;
  multi.deadline_ms = 8.0 * frame_ms;
  multi.hot_scene_count = scenes.size();  // uniform: every scene is hot
  double multi_rps[2] = {0.0, 0.0};
  const std::size_t sweeps[2] = {1, std::max<std::size_t>(inflight, 2)};
  for (int i = 0; i < 2; ++i) {
    RenderServiceOptions opts = service_opts;
    opts.max_inflight_batches = sweeps[i];
    const PhaseResult r = RunPhase(multi, opts);
    char name[64];
    std::snprintf(name, sizeof(name), "multi-scene[inflight=%zu]", sweeps[i]);
    PrintPhase(name, r);
    AddPhaseEntries(json, std::string("serve/") + name, r, effective_threads);
    multi_rps[i] = r.stats.ThroughputRps();
    if (r.stats.queue_peak > capacity) {
      std::fprintf(stderr, "ERROR: queue grew past its bound (%zu > %zu)\n",
                   r.stats.queue_peak, capacity);
      return 1;
    }
  }
  if (multi_rps[0] > 0.0) {
    std::printf("multi-scene concurrency: %.1f -> %.1f rps "
                "(%.2fx with %zu in-flight batches)\n",
                multi_rps[0], multi_rps[1], multi_rps[1] / multi_rps[0],
                sweeps[1]);
    if (multi_rps[1] <= multi_rps[0]) {
      std::printf("note: no concurrency gain measured — expected on "
                  "single-core machines where one worker backs the pool\n");
    }
  }

  bench::PrintRule();

  // Batch-size-1 dispatch sweep: a closed-loop window of single-request
  // batches on one hot scene, small frames, so per-request dispatch cost
  // (admission, wakeup, issue) is the largest controllable slice. One
  // fresh service per SPNF_DISPATCH mode — the mode is captured at
  // construction — with bit-identical scheduling by construction, so the
  // throughput delta is pure dispatch overhead.
  const auto dispatch_requests =
      static_cast<std::size_t>(args.GetInt("drequests", 300));
  const int dispatch_img = args.GetInt("dimg", 16);
  double batch1_rps[2] = {0.0, 0.0};
  const dispatch::Mode modes[2] = {dispatch::Mode::kLocked,
                                   dispatch::Mode::kLockFree};
  for (int m = 0; m < 2; ++m) {
    const dispatch::Mode prev = dispatch::SetActiveMode(modes[m]);
    const char* mode_name = dispatch::ModeName(modes[m]);
    RenderServiceOptions opts = service_opts;
    opts.max_batch = 1;
    RenderService service(opts);
    RenderRequest small = base;
    small.config.scene_id = scenes.front();
    small.image_width = small.image_height = dispatch_img;
    service.Submit(small).get();  // warm this service's pipeline handle

    constexpr std::size_t kWindow = 8;
    std::deque<std::future<RenderResponse>> window;
    bench::WallTimer timer;
    for (std::size_t i = 0; i < dispatch_requests; ++i) {
      RenderRequest r = small;
      r.view = static_cast<int>(i) % std::max(r.n_views, 1);
      window.push_back(service.Submit(r));
      if (window.size() >= kWindow) {
        window.front().get();
        window.pop_front();
      }
    }
    while (!window.empty()) {
      window.front().get();
      window.pop_front();
    }
    const double wall_ms = timer.ElapsedMs();
    dispatch::SetActiveMode(prev);

    const ServiceStatsSnapshot s = service.Stats();
    batch1_rps[m] =
        wall_ms > 0.0
            ? static_cast<double>(dispatch_requests) * 1000.0 / wall_ms
            : 0.0;
    std::printf("batch-1 [%-8s] %9.1f rps | queue p50 %7.3f ms  "
                "p99 %7.3f ms\n",
                mode_name, batch1_rps[m], s.queue_latency.Percentile(50),
                s.queue_latency.Percentile(99));
    const std::string name = std::string("serve/batch1-") + mode_name;
    json.AddPercentiles(name, s.total_latency.Percentile(50),
                        s.total_latency.Percentile(95),
                        s.total_latency.Percentile(99), batch1_rps[m],
                        effective_threads);
    json.AddCounts(name + "/outcomes", s.completed, s.rejected, s.expired,
                   effective_threads);
    if (s.rejected + s.expired > 0) {
      std::fprintf(stderr,
                   "ERROR: batch-1 closed loop shed %llu request(s)\n",
                   static_cast<unsigned long long>(s.rejected + s.expired));
      return 1;
    }
  }
  if (batch1_rps[0] > 0.0) {
    const double ratio = batch1_rps[1] / batch1_rps[0];
    std::printf("batch-1 dispatch: locked %.1f -> lockfree %.1f rps "
                "(%.2fx)\n", batch1_rps[0], batch1_rps[1], ratio);
    if (ratio < 1.0) {
      std::printf("note: lock-free path not ahead — expected on single-core "
                  "machines where admission never contends\n");
    }
    // Ratio value rides in the wall_ms field (repo convention).
    json.Add("ratio/lockfree-vs-locked", ratio, effective_threads);
  }

  // Dispatch-overhead probe: strictly one request in flight on the
  // lock-free path, so the queue is empty at every submit and the
  // submit->issue latency is pure dispatch cost (admission + dispatcher
  // wakeup + batch issue), with no render backlog mixed in.
  {
    const dispatch::Mode prev =
        dispatch::SetActiveMode(dispatch::Mode::kLockFree);
    RenderServiceOptions opts = service_opts;
    opts.max_batch = 1;
    RenderService service(opts);
    RenderRequest small = base;
    small.config.scene_id = scenes.front();
    small.image_width = small.image_height = dispatch_img;
    service.Submit(small).get();  // warm
    const std::size_t probes = std::max<std::size_t>(dispatch_requests / 4, 32);
    for (std::size_t i = 0; i < probes; ++i) {
      RenderRequest r = small;
      r.view = static_cast<int>(i) % std::max(r.n_views, 1);
      service.Submit(r).get();
    }
    dispatch::SetActiveMode(prev);
    // Percentile over this service's completions (the warmup request is one
    // sample among `probes`; the median is robust to it).
    const double overhead_ms = service.Stats().queue_latency.Percentile(50);
    std::printf("dispatch overhead (submit->issue, empty queue): %.3f ms\n",
                overhead_ms);
    json.Add("serve/dispatch-overhead", overhead_ms, effective_threads);
  }

  bench::PrintRule();

  // Tracing-overhead gate: the batch-1 closed-loop window replayed on fresh
  // services at SPNF_TRACE=off, =counters and =full. Same load, same
  // scheduling — the throughput ratios (level / off) are the observability
  // layer's overhead contract (counters-only must stay >= 0.99, full
  // tracing >= 0.95 on multi-core hosts; see ARCHITECTURE.md).
  {
    const auto sweep = [&](obs::TraceLevel level) -> double {
      const obs::TraceLevel prev = obs::SetActiveTraceLevel(level);
      RenderServiceOptions opts = service_opts;
      opts.max_batch = 1;
      RenderService service(opts);
      RenderRequest small = base;
      small.config.scene_id = scenes.front();
      small.image_width = small.image_height = dispatch_img;
      service.Submit(small).get();  // warm this service's pipeline handle
      constexpr std::size_t kWindow = 8;
      std::deque<std::future<RenderResponse>> window;
      bench::WallTimer timer;
      for (std::size_t i = 0; i < dispatch_requests; ++i) {
        RenderRequest r = small;
        r.view = static_cast<int>(i) % std::max(r.n_views, 1);
        window.push_back(service.Submit(r));
        if (window.size() >= kWindow) {
          window.front().get();
          window.pop_front();
        }
      }
      while (!window.empty()) {
        window.front().get();
        window.pop_front();
      }
      const double wall_ms = timer.ElapsedMs();
      obs::SetActiveTraceLevel(prev);
      return wall_ms > 0.0
                 ? static_cast<double>(dispatch_requests) * 1000.0 / wall_ms
                 : 0.0;
    };
    const double rps_off = sweep(obs::TraceLevel::kOff);
    const double rps_counters = sweep(obs::TraceLevel::kCounters);
    const double rps_full = sweep(obs::TraceLevel::kFull);
    if (rps_off > 0.0) {
      const double counters_ratio = rps_counters / rps_off;
      const double full_ratio = rps_full / rps_off;
      std::printf("tracing overhead: off %.1f rps | counters %.1f rps "
                  "(%.3fx) | full %.1f rps (%.3fx)\n",
                  rps_off, rps_counters, counters_ratio, rps_full, full_ratio);
      json.AddObsRatio("serve/trace-overhead[counters]", counters_ratio);
      json.AddObsRatio("serve/trace-overhead[full]", full_ratio);
      // Ratio value rides in the wall_ms field too (repo convention), so the
      // trajectory tooling that only reads `entries` still sees the gate.
      json.Add("serve/trace-overhead", full_ratio, effective_threads);
    }
  }

  // Export whatever the trace rings hold (the full-level sweep above, plus
  // everything recorded when the process runs under SPNF_TRACE=full) as a
  // Chrome trace, and the metrics registry as Prometheus text. CI uploads
  // both as artifacts from the serving smoke run.
  obs::WriteChromeTraceFile("TRACE_serving.json", obs::DrainTrace());
  obs::WritePrometheusFile("METRICS_serving.prom",
                           obs::MetricsRegistry::Global().Snapshot());

  bench::PrintRule();
  bench::AddBuildTimings(json);
  json.CaptureObsSnapshot();

  if (unsat.stats.rejected + unsat.stats.expired > 0) {
    std::fprintf(stderr,
                 "ERROR: unsaturated run shed %llu request(s) — admission "
                 "control dropped load the service had capacity for\n",
                 static_cast<unsigned long long>(unsat.stats.rejected +
                                                 unsat.stats.expired));
    return 1;
  }
  if (sat.stats.queue_peak > capacity ||
      sat_ladder.stats.queue_peak > capacity) {
    std::fprintf(stderr,
                 "ERROR: queue grew past its bound (%zu/%zu > %zu)\n",
                 sat.stats.queue_peak, sat_ladder.stats.queue_peak, capacity);
    return 1;
  }
  if (sat.stats.rejected + sat.stats.expired == 0) {
    std::printf("note: saturated run shed nothing — offered rate likely too "
                "low for this machine\n");
  }
  // The tentpole gate: at identical offered load, degrading must strictly
  // beat dropping whenever the fixed-quality run shed at all.
  if (fixed_shed > 0.0 && ladder_shed >= fixed_shed) {
    std::fprintf(stderr,
                 "ERROR: quality ladder did not reduce shedding "
                 "(fixed %.3f vs ladder %.3f)\n",
                 fixed_shed, ladder_shed);
    return 1;
  }
  return 0;
}
