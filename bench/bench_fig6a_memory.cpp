// Fig 6(a): voxel-grid memory size, SpNeRF vs the original VQRF (restored
// grid). Paper result: average 21.07x reduction.
#include "bench/bench_util.hpp"
#include "common/units.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  bench::PrintHeader("Fig 6(a)", "memory size reduction vs original VQRF");
  bench::JsonReport json("fig6a_memory");
  const bench::WallTimer timer;
  std::printf("%-12s %12s %12s %10s | %10s %10s %10s %10s\n", "scene",
              "VQRF", "SpNeRF", "reduction", "hashtbl", "bitmap", "codebook",
              "truegrid");
  bench::PrintRule();
  std::vector<double> reductions;
  for (const MemoryRow& r : RunMemory(cfg)) {
    std::printf("%-12s %12s %12s %9.2fx | %10s %10s %10s %10s\n",
                r.scene.c_str(), FormatBytes(r.vqrf_restored_bytes).c_str(),
                FormatBytes(r.spnerf_bytes).c_str(), r.reduction,
                FormatBytes(r.hash_table_bytes).c_str(),
                FormatBytes(r.bitmap_bytes).c_str(),
                FormatBytes(r.codebook_bytes).c_str(),
                FormatBytes(r.true_grid_bytes).c_str());
    reductions.push_back(r.reduction);
  }
  bench::PrintRule();
  std::printf("average reduction: %.2fx   (paper: 21.07x)\n",
              MeanOf(reductions));
  json.Add("memory", timer.ElapsedMs(), bench::EffectiveThreads(cfg));
  bench::AddBuildTimings(json);
  return 0;
}
