// Table II: summary of comparisons between related work and SpNeRF.
// Baseline rows are the published RT-NeRF.Edge / NeuRex.Edge operating
// points; the SpNeRF row is computed by the cycle simulator + area/power
// models over the full scene zoo.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  bench::JsonReport json("table2_comparison");
  const bench::WallTimer timer;
  const auto rows = RunHardwareComparison(cfg);
  const DesignReport rep = MakeDesignReport(cfg, rows);
  json.Add("hardware_comparison", timer.ElapsedMs(),
           bench::EffectiveThreads(cfg));

  bench::PrintHeader("Table II", "comparison with related accelerators");
  std::printf("%-16s %8s %8s %6s %8s %-14s %8s %10s %10s\n", "accelerator",
              "SRAM MB", "mm^2", "nm", "power", "DRAM", "FPS", "FPS/W",
              "FPS/mm^2");
  bench::PrintRule();
  for (const TableIIRow& r : rep.table2) {
    std::printf("%-16s %8.2f %8.2f %6d %7.2fW %-14s %8.2f %10.2f %10.2f\n",
                r.name.c_str(), r.sram_mb, r.area_mm2, r.tech_nm, r.power_w,
                r.dram.c_str(), r.fps, r.energy_eff_fps_per_w,
                r.area_eff_fps_per_mm2);
  }
  bench::PrintRule();
  const TableIIRow& sp = rep.spnerf_row;
  std::printf("paper SpNeRF row: 0.61 MB, 7.7 mm^2, 3 W, 67.56 FPS, "
              "22.52 FPS/W, 6.36 FPS/mm^2\n");
  std::printf("speedup vs RT-NeRF.Edge: %.2fx (paper 1.5x); vs NeuRex.Edge: "
              "%.2fx (paper 10.3x)\n",
              sp.fps / 45.0, sp.fps / 6.57);
  std::printf("energy-eff gain vs RT-NeRF.Edge: %.2fx (paper 4x); vs "
              "NeuRex.Edge: %.2fx (paper 4.37x)\n",
              sp.energy_eff_fps_per_w / 5.63, sp.energy_eff_fps_per_w / 5.15);
  bench::AddBuildTimings(json);
  return 0;
}
