// Table I: a summary of profiling computing platforms.
#include "bench/bench_util.hpp"
#include "model/platform.hpp"

int main() {
  using namespace spnerf;
  bench::PrintHeader("Table I", "profiling computing platforms");
  std::printf("%-10s %-6s %-8s %-28s %-10s %-10s %-10s %-8s\n", "Spec.",
              "Tech.", "Power", "DRAM", "BW(GB/s)", "L2", "FP32", "FP16");
  bench::PrintRule();
  for (const PlatformSpec& p : TableIPlatforms()) {
    std::printf("%-10s %-2d nm  %5.0f W  %-28s %-10.1f %-10s %5.2f TF  %5.2f TF\n",
                p.name.c_str(), p.tech_nm, p.power_w, p.dram_kind.c_str(),
                p.dram_bw_gbps, FormatBytes(p.l2_bytes).c_str(), p.fp32_tflops,
                p.fp16_tflops);
  }
  std::printf("\npaper reference: A100 7nm/400W/1555GB/s/40MB, "
              "ONX 8nm/25W/102.4GB/s/4MB, XNX 16nm/20W/59.7GB/s/512KB\n");
  return 0;
}
