// Extension study: two-choice tagged hashing vs the paper's single-probe
// table, at equal hash-table memory. The baseline's non-zero/non-zero
// collisions alias silently (wrong color/density survives masking); the
// two-choice variant converts almost all of that error mass into explicit
// dropouts and small tag-collision residue, at the cost of a second probe.
#include <algorithm>

#include "bench/bench_util.hpp"
#include "common/ssim.hpp"
#include "core/pipeline.hpp"
#include "encoding/two_choice.hpp"
#include "render/field_source.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  const Config c = Config::FromArgs(argc, argv);
  if (!c.Has("scenes")) cfg.scenes = {SceneId::kChair, SceneId::kShip};

  bench::PrintHeader("Extension", "two-choice tagged hashing vs single probe");
  bench::JsonReport json("ext_two_choice");
  std::printf("load regime: T chosen small (4k entries/subgrid) so collisions"
              " are frequent;\ntwo-choice uses 26/32 of the entries for equal"
              " table memory.\n\n");
  std::printf("%-10s %-12s %10s %10s %10s %10s %10s\n", "scene", "codec",
              "wrong", "dropped", "PSNR", "SSIM", "tbl mem");
  bench::PrintRule();

  for (SceneId id : cfg.scenes) {
    PipelineConfig pc = cfg.MakePipelineConfig(id);
    pc.spnerf.table_size = 4096;
    const std::shared_ptr<const ScenePipeline> p =
        PipelineRepository::Global().Acquire(pc);
    const VqrfModel& vqrf = *p->Dataset().vqrf;
    const Camera cam = p->MakeCamera(cfg.psnr_image_size, cfg.psnr_image_size);
    const Image gt = p->RenderGroundTruth(cam);

    // Baseline: the paper's codec at T=4096.
    {
      const Image img = p->RenderSpnerf(cam, /*bitmap_masking=*/true);
      std::printf("%-10s %-12s %9.2f%% %10s %9.2f %9.4f %10s\n", SceneName(id),
                  "single", p->Codec().NonZeroAliasRate() * 100.0, "-",
                  Psnr(gt, img), Ssim(gt, img),
                  FormatBytes(p->Codec().HashTableBytes()).c_str());
    }
    // Extension at equal memory.
    {
      const u32 entries = 4096u * 26 / 32;
      const TwoChoiceCodec ext = TwoChoiceCodec::Preprocess(
          vqrf, pc.spnerf.subgrid_count, entries);
      const CodecFieldSource<TwoChoiceCodec> src(ext);
      RenderOptions opt = p->Config().render;
      opt.coarse_skip = &p->Skip();
      opt.octree_skip = &p->Octree();
      const Image img = VolumeRenderer(opt).Render(src, p->GetMlp(), cam);
      std::printf("%-10s %-12s %9.2f%% %9.2f%% %9.2f %9.4f %10s\n",
                  SceneName(id), "two-choice", ext.ErrorRate() * 100.0,
                  ext.DropRate() * 100.0, Psnr(gt, img), Ssim(gt, img),
                  FormatBytes(ext.HashTableBytes()).c_str());
    }
  }
  bench::PrintRule();
  std::printf("hardware cost: +6 tag bits per entry (already charged above) "
              "and a second HMU probe per lookup\n");
  bench::AddBuildTimings(json);
  return 0;
}
