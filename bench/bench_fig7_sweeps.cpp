// Fig 7: (a) PSNR vs subgrid number at hash table size 16k;
//        (b) PSNR vs hash table size at subgrid number 64.
// Paper observation: PSNR rises rapidly, then saturates; the design adopts
// K = 64 subgrids and T = 32k entries.
//
// Defaults sweep 3 representative scenes at a reduced raster to keep the
// bench under ~2 minutes; pass scenes=8 img=100 for the full dataset.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  const Config c = Config::FromArgs(argc, argv);
  if (!c.Has("scenes")) {
    cfg.scenes = {SceneId::kChair, SceneId::kLego, SceneId::kMic};
  }
  if (!c.Has("img")) cfg.psnr_image_size = 80;

  bench::JsonReport json("fig7_sweeps");
  bench::PrintHeader("Fig 7(a)", "PSNR vs subgrid number (table size = 16k)");
  std::printf("%-10s %10s %10s %12s\n", "subgrids", "PSNR", "alias", "encoded");
  bench::PrintRule();
  const bench::WallTimer timer_a;
  for (const SweepPoint& pt :
       RunSubgridSweep(cfg, {4, 8, 16, 32, 64, 128, 256}, 16 * 1024)) {
    std::printf("%-10d %9.2f %9.2f%% %12s\n", pt.subgrid_count, pt.mean_psnr,
                pt.alias_rate * 100.0, FormatBytes(pt.spnerf_bytes).c_str());
  }
  json.Add("subgrid_sweep", timer_a.ElapsedMs(), bench::EffectiveThreads(cfg));

  std::printf("\n");
  bench::PrintHeader("Fig 7(b)", "PSNR vs hash table size (subgrids = 64)");
  std::printf("%-10s %10s %10s %12s\n", "table T", "PSNR", "alias", "encoded");
  bench::PrintRule();
  const bench::WallTimer timer_b;
  for (const SweepPoint& pt : RunTableSweep(
           cfg, 64, {2048, 4096, 8192, 16384, 32768, 65536, 131072})) {
    std::printf("%-10u %9.2f %9.2f%% %12s\n", pt.table_size, pt.mean_psnr,
                pt.alias_rate * 100.0, FormatBytes(pt.spnerf_bytes).c_str());
  }
  json.Add("table_sweep", timer_b.ElapsedMs(), bench::EffectiveThreads(cfg));
  bench::PrintRule();
  std::printf("paper design point: K=64, T=32k — larger values yield only "
              "marginal PSNR improvements\n");
  bench::AddBuildTimings(json);
  return 0;
}
