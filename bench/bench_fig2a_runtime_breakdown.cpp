// Fig 2(a): runtime breakdown of the VQRF rendering flow on A100/ONX/XNX.
// Paper observation: edge platforms spend a 4.79x..5.14x larger share of
// frame time on memory than the A100.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  bench::PrintHeader("Fig 2(a)", "VQRF time distribution across platforms");
  bench::JsonReport json("fig2a_runtime_breakdown");
  const bench::WallTimer timer;
  const auto rows = RunRuntimeBreakdown(cfg);
  json.Add("runtime_breakdown", timer.ElapsedMs(), bench::EffectiveThreads(cfg));
  std::printf("%-8s %10s %10s %10s %12s\n", "platform", "memory", "compute",
              "other", "VQRF fps");
  bench::PrintRule();
  double a100_mem = 0.0;
  for (const RuntimeBreakdownRow& r : rows) {
    std::printf("%-8s %9.1f%% %9.1f%% %9.1f%% %12.3f\n", r.platform.c_str(),
                r.memory_share * 100.0, r.compute_share * 100.0,
                r.overhead_share * 100.0, r.fps);
    if (r.platform == "A100") a100_mem = r.memory_share;
  }
  bench::PrintRule();
  for (const RuntimeBreakdownRow& r : rows) {
    if (r.platform == "A100" || a100_mem <= 0.0) continue;
    std::printf("%s memory-share vs A100: %.2fx   (paper: 4.79x..5.14x)\n",
                r.platform.c_str(), r.memory_share / a100_mem);
  }
  bench::AddBuildTimings(json);
  return 0;
}
