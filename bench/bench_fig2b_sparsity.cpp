// Fig 2(b): voxel-grid data sparsity per Synthetic-NeRF scene.
// Paper observation: non-zero points occupy only 2.01%..6.48% of the grid.
#include <algorithm>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  bench::PrintHeader("Fig 2(b)", "voxel grid data sparsity");
  bench::JsonReport json("fig2b_sparsity");
  const bench::WallTimer timer;
  std::printf("%-12s %14s %14s %12s\n", "scene", "total voxels",
              "non-zero", "non-zero %");
  bench::PrintRule();
  double lo = 1.0, hi = 0.0;
  for (const SparsityRow& r : RunSparsity(cfg)) {
    std::printf("%-12s %14llu %14llu %11.2f%%\n", r.scene.c_str(),
                static_cast<unsigned long long>(r.total_voxels),
                static_cast<unsigned long long>(r.nonzero_voxels),
                r.nonzero_fraction * 100.0);
    lo = std::min(lo, r.nonzero_fraction);
    hi = std::max(hi, r.nonzero_fraction);
  }
  bench::PrintRule();
  std::printf("measured range: %.2f%% .. %.2f%%   (paper: 2.01%% .. 6.48%%)\n",
              lo * 100.0, hi * 100.0);
  json.Add("sparsity", timer.ElapsedMs(), bench::EffectiveThreads(cfg));
  bench::AddBuildTimings(json);
  return 0;
}
