// Ablation: block-circulant input-buffer storage format (paper Fig 5) vs a
// pad-to-64 naive layout. Reports feed cycles per batch, buffer footprint,
// and the end-to-end frame impact in the cycle simulator.
#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "sim/accelerator.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  const Config c = Config::FromArgs(argc, argv);
  if (!c.Has("scenes")) cfg.scenes = {SceneId::kChair, SceneId::kShip};

  bench::PrintHeader("Ablation", "block-circulant input buffer (Fig 5)");
  bench::JsonReport json("ablation_blockcirculant");

  // Static properties of the two layouts.
  const BlockCirculantBuffer bc(kMlpBatch, InputLayout::kBlockCirculant);
  const BlockCirculantBuffer naive(kMlpBatch, InputLayout::kPaddedNaive);
  std::printf("%-22s %16s %16s\n", "property", "block-circulant",
              "padded-naive");
  bench::PrintRule();
  std::printf("%-22s %16d %16d\n", "read cycles / vector",
              bc.ReadCyclesPerVector(), naive.ReadCyclesPerVector());
  std::printf("%-22s %16llu %16llu\n", "feed cycles / batch",
              static_cast<unsigned long long>(bc.FeedCycles(kMlpBatch)),
              static_cast<unsigned long long>(naive.FeedCycles(kMlpBatch)));
  std::printf("%-22s %16llu %16llu\n", "bytes / vector",
              static_cast<unsigned long long>(bc.BytesPerVector()),
              static_cast<unsigned long long>(naive.BytesPerVector()));
  std::printf("%-22s %15.2fx\n", "SRAM overhead saved",
              static_cast<double>(naive.BytesPerVector()) /
                  static_cast<double>(bc.BytesPerVector()));

  std::printf("\nframe-level impact (cycle simulator):\n");
  std::printf("%-12s %14s %14s %10s\n", "scene", "BC fps", "naive fps",
              "speedup");
  bench::PrintRule();
  for (SceneId id : cfg.scenes) {
    const std::shared_ptr<const ScenePipeline> p =
        PipelineRepository::Global().Acquire(cfg.MakePipelineConfig(id));
    const FrameWorkload w =
        p->MeasureWorkload(cfg.tile_size, cfg.frame_width, cfg.frame_height);
    AcceleratorConfig bc_cfg = cfg.accel;
    bc_cfg.input_layout = InputLayout::kBlockCirculant;
    AcceleratorConfig nv_cfg = cfg.accel;
    nv_cfg.input_layout = InputLayout::kPaddedNaive;
    const SimResult rb = AcceleratorSim(bc_cfg).SimulateFrame(w);
    const SimResult rn = AcceleratorSim(nv_cfg).SimulateFrame(w);
    std::printf("%-12s %14.2f %14.2f %9.3fx\n", SceneName(id), rb.fps, rn.fps,
                rb.fps / rn.fps);
  }
  bench::PrintRule();
  std::printf("the MLP compute hides the naive layout's extra feed cycles at "
              "this design point; the 1.6x buffer saving is the lasting win\n");
  bench::AddBuildTimings(json);
  return 0;
}
