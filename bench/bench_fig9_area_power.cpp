// Fig 9: area (a) and power (b) breakdown of the SpNeRF accelerator.
// Paper observations: on-chip SRAM is only a small fraction of area (unlike
// prior designs); the systolic array dominates power; totals 7.7 mm^2 / 3 W.
#include "bench/bench_util.hpp"
#include "common/units.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  bench::JsonReport json("fig9_area_power");
  const bench::WallTimer timer;
  const auto rows = RunHardwareComparison(cfg);
  const DesignReport rep = MakeDesignReport(cfg, rows);
  json.Add("design_report", timer.ElapsedMs(), bench::EffectiveThreads(cfg));

  bench::PrintHeader("Fig 9(a)", "area breakdown (TSMC 28nm model)");
  const AreaBreakdown& a = rep.area;
  const auto pct = [&](double v) { return 100.0 * v / a.total_mm2; };
  std::printf("%-28s %10s %8s\n", "component", "mm^2", "share");
  bench::PrintRule();
  std::printf("%-28s %10.2f %7.1f%%\n", "systolic array (64x64 FP16)",
              a.systolic_mm2, pct(a.systolic_mm2));
  std::printf("%-28s %10.2f %7.1f%%\n", "SGPU logic (GID/BLU/HMU/TIU)",
              a.sgpu_logic_mm2, pct(a.sgpu_logic_mm2));
  std::printf("%-28s %10.2f %7.1f%%\n", "on-chip SRAM (0.61 MB)", a.sram_mm2,
              pct(a.sram_mm2));
  std::printf("%-28s %10.2f %7.1f%%\n", "DRAM controller + PHY",
              a.dram_phy_mm2, pct(a.dram_phy_mm2));
  std::printf("%-28s %10.2f %7.1f%%\n", "controller / NoC / misc",
              a.controller_misc_mm2, pct(a.controller_misc_mm2));
  bench::PrintRule();
  std::printf("%-28s %10.2f          (paper: 7.7 mm^2)\n", "total",
              a.total_mm2);
  std::printf("SRAM share: %.1f%% — a small fraction, as the paper reports\n",
              a.SramShare() * 100.0);

  std::printf("\n");
  bench::PrintHeader("Fig 9(b)", "power breakdown at the mean frame rate");
  const PowerBreakdown& p = rep.power;
  const auto ppct = [&](double v) { return 100.0 * v / p.total_w; };
  std::printf("%-28s %10s %8s\n", "component", "power", "share");
  bench::PrintRule();
  std::printf("%-28s %10s %7.1f%%\n", "systolic array",
              FormatWatts(p.systolic_w).c_str(), ppct(p.systolic_w));
  std::printf("%-28s %10s %7.1f%%\n", "on-chip SRAM",
              FormatWatts(p.sram_w).c_str(), ppct(p.sram_w));
  std::printf("%-28s %10s %7.1f%%\n", "SGPU logic",
              FormatWatts(p.sgpu_logic_w).c_str(), ppct(p.sgpu_logic_w));
  std::printf("%-28s %10s %7.1f%%\n", "DRAM (dyn+bg+ctrl)",
              FormatWatts(p.dram_w).c_str(), ppct(p.dram_w));
  std::printf("%-28s %10s %7.1f%%\n", "leakage",
              FormatWatts(p.leakage_w).c_str(), ppct(p.leakage_w));
  std::printf("%-28s %10s %7.1f%%\n", "other (ctrl/NoC/act)",
              FormatWatts(p.other_w).c_str(), ppct(p.other_w));
  bench::PrintRule();
  std::printf("%-28s %10s          (paper: 3 W, systolic dominant)\n", "total",
              FormatWatts(p.total_w).c_str());
  bench::AddBuildTimings(json);
  return 0;
}
