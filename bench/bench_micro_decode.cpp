// Micro-benchmarks (google-benchmark): per-operation throughput of the
// software components — spatial hash, online decode, trilinear sampling,
// MLP forward (FP32/FP16), and the sparse-format lookups.
#include <benchmark/benchmark.h>

#include "assets/asset_cache.hpp"
#include "common/rng.hpp"
#include "encoding/sparse_formats.hpp"
#include "encoding/spnerf_codec.hpp"
#include "render/embedding.hpp"
#include "render/field_source.hpp"
#include "render/mlp.hpp"
#include "render/render_engine.hpp"
#include "scene/dataset.hpp"

namespace spnerf {
namespace {

/// Shared fixture data built once (48^3 materials scene).
struct MicroData {
  std::shared_ptr<const SceneDataset> dataset;
  SpNeRFModel codec;
  CooGrid coo;
  CsrGrid csr;
  CscGrid csc;
  Mlp mlp;

  MicroData() {
    DatasetParams dp;
    dp.resolution_override = 48;
    dp.vqrf.codebook_size = 256;
    dp.vqrf.kmeans_iterations = 3;
    dataset = AssetCache::Global().AcquireDataset(SceneId::kMaterials, dp);
    SpNeRFParams sp;
    sp.subgrid_count = 16;
    sp.table_size = 8192;
    codec = SpNeRFModel::Preprocess(*dataset->vqrf, sp);
    coo = CooGrid::Build(*dataset->vqrf);
    csr = CsrGrid::Build(*dataset->vqrf);
    csc = CscGrid::Build(*dataset->vqrf);
    mlp = Mlp::Random(1);
  }
};

MicroData& Data() {
  static MicroData data;
  return data;
}

void BM_SpatialHash(benchmark::State& state) {
  Rng rng(1);
  Vec3i p{rng.UniformInt(0, 255), rng.UniformInt(0, 255),
          rng.UniformInt(0, 255)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpatialHash(p, 32768));
    p.x = (p.x + 1) & 255;
  }
}
BENCHMARK(BM_SpatialHash);

void BM_OnlineDecode(benchmark::State& state) {
  MicroData& d = Data();
  Rng rng(2);
  const GridDims& dims = d.codec.Dims();
  std::vector<Vec3i> points;
  for (int i = 0; i < 4096; ++i) {
    points.push_back({rng.UniformInt(0, dims.nx - 1),
                      rng.UniformInt(0, dims.ny - 1),
                      rng.UniformInt(0, dims.nz - 1)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.codec.Decode(points[i & 4095]));
    ++i;
  }
}
BENCHMARK(BM_OnlineDecode);

void BM_TrilinearSampleSpnerf(benchmark::State& state) {
  MicroData& d = Data();
  const SpNeRFFieldSource src(d.codec, false, false);
  Rng rng(3);
  std::vector<Vec3f> points;
  for (int i = 0; i < 4096; ++i) {
    points.push_back({rng.NextFloat(), rng.NextFloat(), rng.NextFloat()});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.Sample(points[i & 4095]));
    ++i;
  }
}
BENCHMARK(BM_TrilinearSampleSpnerf);

void BM_TrilinearSampleDense(benchmark::State& state) {
  MicroData& d = Data();
  const GridFieldSource src(d.dataset->full_grid);
  Rng rng(4);
  std::vector<Vec3f> points;
  for (int i = 0; i < 4096; ++i) {
    points.push_back({rng.NextFloat(), rng.NextFloat(), rng.NextFloat()});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.Sample(points[i & 4095]));
    ++i;
  }
}
BENCHMARK(BM_TrilinearSampleDense);

void BM_MlpForwardFp32(benchmark::State& state) {
  MicroData& d = Data();
  Rng rng(5);
  std::array<float, kMlpInputDim> in{};
  for (auto& v : in) v = rng.Uniform(-1.f, 1.f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.mlp.Forward(in));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Mlp::MacsPerSample()));
}
BENCHMARK(BM_MlpForwardFp32);

void BM_MlpForwardFp16(benchmark::State& state) {
  MicroData& d = Data();
  Rng rng(6);
  std::array<float, kMlpInputDim> in{};
  for (auto& v : in) v = rng.Uniform(-1.f, 1.f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.mlp.ForwardFp16(in));
  }
}
BENCHMARK(BM_MlpForwardFp16);

/// Whole-tile render through the engine, stats on — the end-to-end hot path
/// the refactor parallelised. Sweeps the worker count.
void BM_RenderEngineTile(benchmark::State& state) {
  MicroData& d = Data();
  const SpNeRFFieldSource src(d.codec, false, false);
  RenderJob job;
  job.source = &src;
  job.mlp = &d.mlp;
  job.camera = Camera({-1.4f, 0.6f, 0.5f}, {0.5f, 0.45f, 0.5f},
                      {0.f, 1.f, 0.f}, 35.f, 64, 64);
  job.collect_stats = true;
  RenderEngineOptions opts;
  opts.max_threads = static_cast<unsigned>(state.range(0));
  const RenderEngine engine(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Render(job));
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64);
}
BENCHMARK(BM_RenderEngineTile)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ViewEmbedding(benchmark::State& state) {
  const Vec3f dir = Vec3f{0.3f, -0.5f, 0.8f}.Normalized();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EmbedViewDirection(dir));
  }
}
BENCHMARK(BM_ViewEmbedding);

template <typename GridT>
void LookupLoop(benchmark::State& state, const GridT& grid,
                const GridDims& dims) {
  Rng rng(7);
  std::vector<Vec3i> points;
  for (int i = 0; i < 4096; ++i) {
    points.push_back({rng.UniformInt(0, dims.nx - 1),
                      rng.UniformInt(0, dims.ny - 1),
                      rng.UniformInt(0, dims.nz - 1)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.Lookup(points[i & 4095]));
    ++i;
  }
}

void BM_LookupCoo(benchmark::State& state) {
  LookupLoop(state, Data().coo, Data().dataset->vqrf->Dims());
}
BENCHMARK(BM_LookupCoo);

void BM_LookupCsr(benchmark::State& state) {
  LookupLoop(state, Data().csr, Data().dataset->vqrf->Dims());
}
BENCHMARK(BM_LookupCsr);

void BM_LookupCsc(benchmark::State& state) {
  LookupLoop(state, Data().csc, Data().dataset->vqrf->Dims());
}
BENCHMARK(BM_LookupCsc);

}  // namespace
}  // namespace spnerf

BENCHMARK_MAIN();
