// Micro-benchmarks (google-benchmark): per-operation throughput of the
// software components — spatial hash, online decode, trilinear sampling
// (scalar and batched/deduplicated), MLP forward (FP32/FP16, scalar and
// batched), and the sparse-format lookups. After the google-benchmark
// suite, a hand-timed section writes scalar-vs-batched decode entries (and
// their throughput ratios) to BENCH_micro_decode.json via bench_util.
#include <benchmark/benchmark.h>

#include "assets/asset_cache.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "encoding/sparse_formats.hpp"
#include "encoding/spnerf_codec.hpp"
#include "render/embedding.hpp"
#include "render/field_source.hpp"
#include "render/mlp.hpp"
#include "render/render_engine.hpp"
#include "scene/dataset.hpp"

namespace spnerf {
namespace {

/// Shared fixture data built once (48^3 materials scene).
struct MicroData {
  std::shared_ptr<const SceneDataset> dataset;
  SpNeRFModel codec;
  CooGrid coo;
  CsrGrid csr;
  CscGrid csc;
  Mlp mlp;

  MicroData() {
    DatasetParams dp;
    dp.resolution_override = 48;
    dp.vqrf.codebook_size = 256;
    dp.vqrf.kmeans_iterations = 3;
    dataset = AssetCache::Global().AcquireDataset(SceneId::kMaterials, dp);
    SpNeRFParams sp;
    sp.subgrid_count = 16;
    sp.table_size = 8192;
    codec = SpNeRFModel::Preprocess(*dataset->vqrf, sp);
    coo = CooGrid::Build(*dataset->vqrf);
    csr = CsrGrid::Build(*dataset->vqrf);
    csc = CscGrid::Build(*dataset->vqrf);
    mlp = Mlp::Random(1);
  }
};

MicroData& Data() {
  static MicroData data;
  return data;
}

void BM_SpatialHash(benchmark::State& state) {
  Rng rng(1);
  Vec3i p{rng.UniformInt(0, 255), rng.UniformInt(0, 255),
          rng.UniformInt(0, 255)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpatialHash(p, 32768));
    p.x = (p.x + 1) & 255;
  }
}
BENCHMARK(BM_SpatialHash);

void BM_OnlineDecode(benchmark::State& state) {
  MicroData& d = Data();
  Rng rng(2);
  const GridDims& dims = d.codec.Dims();
  std::vector<Vec3i> points;
  for (int i = 0; i < 4096; ++i) {
    points.push_back({rng.UniformInt(0, dims.nx - 1),
                      rng.UniformInt(0, dims.ny - 1),
                      rng.UniformInt(0, dims.nz - 1)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.codec.Decode(points[i & 4095]));
    ++i;
  }
}
BENCHMARK(BM_OnlineDecode);

void BM_TrilinearSampleSpnerf(benchmark::State& state) {
  MicroData& d = Data();
  const SpNeRFFieldSource src(d.codec, false, false);
  Rng rng(3);
  std::vector<Vec3f> points;
  for (int i = 0; i < 4096; ++i) {
    points.push_back({rng.NextFloat(), rng.NextFloat(), rng.NextFloat()});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.Sample(points[i & 4095]));
    ++i;
  }
}
BENCHMARK(BM_TrilinearSampleSpnerf);

/// A wavefront-shaped front: samples of adjacent rays at one march depth —
/// a jittered 32x32 patch spanning ~0.2 of the volume, so neighbouring
/// samples share trilinear corner vertices like a real tile front does.
std::vector<Vec3f> CoherentFront(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<Vec3f> points;
  points.reserve(n);
  const std::size_t side = 32;
  for (std::size_t i = 0; i < n; ++i) {
    const float u = static_cast<float>(i % side) / static_cast<float>(side);
    const float v = static_cast<float>((i / side) % side) /
                    static_cast<float>(side);
    points.push_back({0.4f + 0.2f * u + 0.004f * rng.NextFloat(),
                      0.4f + 0.2f * v + 0.004f * rng.NextFloat(),
                      0.45f + 0.1f * rng.NextFloat()});
  }
  return points;
}

void BM_SampleBatchSpnerf(benchmark::State& state) {
  MicroData& d = Data();
  SpNeRFFieldSource src(d.codec, false, false);
  src.SetBatchDedup(state.range(0) != 0);
  const std::vector<Vec3f> points = CoherentFront(1024, 8);
  std::vector<FieldSample> out(points.size());
  for (auto _ : state) {
    src.SampleBatch(points, out, nullptr);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(points.size()));
}
BENCHMARK(BM_SampleBatchSpnerf)->Arg(1)->Arg(0);  // 1 = dedup, 0 = no dedup

void BM_SampleBatchDense(benchmark::State& state) {
  MicroData& d = Data();
  const GridFieldSource src(d.dataset->full_grid);
  const std::vector<Vec3f> points = CoherentFront(1024, 9);
  std::vector<FieldSample> out(points.size());
  for (auto _ : state) {
    src.SampleBatch(points, out, nullptr);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(points.size()));
}
BENCHMARK(BM_SampleBatchDense);

void BM_TrilinearSampleDense(benchmark::State& state) {
  MicroData& d = Data();
  const GridFieldSource src(d.dataset->full_grid);
  Rng rng(4);
  std::vector<Vec3f> points;
  for (int i = 0; i < 4096; ++i) {
    points.push_back({rng.NextFloat(), rng.NextFloat(), rng.NextFloat()});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.Sample(points[i & 4095]));
    ++i;
  }
}
BENCHMARK(BM_TrilinearSampleDense);

void BM_MlpForwardFp32(benchmark::State& state) {
  MicroData& d = Data();
  Rng rng(5);
  std::array<float, kMlpInputDim> in{};
  for (auto& v : in) v = rng.Uniform(-1.f, 1.f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.mlp.Forward(in));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Mlp::MacsPerSample()));
}
BENCHMARK(BM_MlpForwardFp32);

void BM_MlpForwardFp16(benchmark::State& state) {
  MicroData& d = Data();
  Rng rng(6);
  std::array<float, kMlpInputDim> in{};
  for (auto& v : in) v = rng.Uniform(-1.f, 1.f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.mlp.ForwardFp16(in));
  }
}
BENCHMARK(BM_MlpForwardFp16);

void BM_MlpForwardBatchFp32(benchmark::State& state) {
  MicroData& d = Data();
  Rng rng(6);
  std::vector<std::array<float, kMlpInputDim>> in(256);
  for (auto& sample : in)
    for (auto& v : sample) v = rng.Uniform(-1.f, 1.f);
  std::vector<Vec3f> out(in.size());
  for (auto _ : state) {
    d.mlp.ForwardBatch(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(in.size()) *
                          static_cast<int64_t>(Mlp::MacsPerSample()));
}
BENCHMARK(BM_MlpForwardBatchFp32);

/// Whole-tile render through the engine, stats on — the end-to-end hot path
/// the refactor parallelised. Sweeps the worker count.
void BM_RenderEngineTile(benchmark::State& state) {
  MicroData& d = Data();
  const SpNeRFFieldSource src(d.codec, false, false);
  RenderJob job;
  job.source = &src;
  job.mlp = &d.mlp;
  job.camera = Camera({-1.4f, 0.6f, 0.5f}, {0.5f, 0.45f, 0.5f},
                      {0.f, 1.f, 0.f}, 35.f, 64, 64);
  job.collect_stats = true;
  RenderEngineOptions opts;
  opts.max_threads = static_cast<unsigned>(state.range(0));
  const RenderEngine engine(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Render(job));
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64);
}
BENCHMARK(BM_RenderEngineTile)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ViewEmbedding(benchmark::State& state) {
  const Vec3f dir = Vec3f{0.3f, -0.5f, 0.8f}.Normalized();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EmbedViewDirection(dir));
  }
}
BENCHMARK(BM_ViewEmbedding);

template <typename GridT>
void LookupLoop(benchmark::State& state, const GridT& grid,
                const GridDims& dims) {
  Rng rng(7);
  std::vector<Vec3i> points;
  for (int i = 0; i < 4096; ++i) {
    points.push_back({rng.UniformInt(0, dims.nx - 1),
                      rng.UniformInt(0, dims.ny - 1),
                      rng.UniformInt(0, dims.nz - 1)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.Lookup(points[i & 4095]));
    ++i;
  }
}

void BM_LookupCoo(benchmark::State& state) {
  LookupLoop(state, Data().coo, Data().dataset->vqrf->Dims());
}
BENCHMARK(BM_LookupCoo);

void BM_LookupCsr(benchmark::State& state) {
  LookupLoop(state, Data().csr, Data().dataset->vqrf->Dims());
}
BENCHMARK(BM_LookupCsr);

void BM_LookupCsc(benchmark::State& state) {
  LookupLoop(state, Data().csc, Data().dataset->vqrf->Dims());
}
BENCHMARK(BM_LookupCsc);

/// Hand-timed scalar-vs-batched decode comparison on a coherent front,
/// written to BENCH_micro_decode.json so the batched-decode trajectory is
/// tracked per commit alongside the render benches. Ratio entries store the
/// throughput ratio in the wall_ms field (>1 = batch faster; tracked, not
/// gated).
void WriteBatchedDecodeJson() {
  MicroData& d = Data();
  SpNeRFFieldSource src(d.codec, false, false);
  const std::vector<Vec3f> points = CoherentFront(1024, 10);
  std::vector<FieldSample> out(points.size());
  constexpr int kReps = 200;

  bench::JsonReport json("micro_decode");
  const auto time_ms = [&](auto&& body) {
    body();  // warm up scratch + caches
    const bench::WallTimer timer;
    for (int r = 0; r < kReps; ++r) body();
    return timer.ElapsedMs();
  };

  const double scalar_ms = time_ms([&] {
    for (std::size_t i = 0; i < points.size(); ++i)
      out[i] = src.Sample(points[i], nullptr);
  });
  src.SetBatchDedup(true);
  const double dedup_ms =
      time_ms([&] { src.SampleBatch(points, out, nullptr); });
  src.SetBatchDedup(false);
  const double nodedup_ms =
      time_ms([&] { src.SampleBatch(points, out, nullptr); });

  std::printf("\nbatched decode, %zu-sample coherent front x%d reps:\n"
              "  scalar          %8.2f ms\n"
              "  batch           %8.2f ms (%.2fx)\n"
              "  batch no-dedup  %8.2f ms (%.2fx)\n",
              points.size(), kReps, scalar_ms, dedup_ms,
              scalar_ms / dedup_ms, nodedup_ms, scalar_ms / nodedup_ms);
  json.Add("decode/scalar", scalar_ms, 1);
  json.Add("decode/batch[dedup]", dedup_ms, 1);
  json.Add("decode/batch[no-dedup]", nodedup_ms, 1);
  json.Add("ratio/batch-vs-scalar[dedup]", scalar_ms / dedup_ms, 1);
  json.Add("ratio/batch-vs-scalar[no-dedup]", scalar_ms / nodedup_ms, 1);

  // Per-kernel SIMD-vs-scalar comparison: each kernel-bearing batch path
  // runs forced to the scalar reference and forced to the best
  // host-supported vector path, and the throughput ratio lands in the
  // trajectory under a path-tagged name (e.g.
  // "ratio/forward-batch-avx2-vs-scalar"). On a scalar-only host the best
  // path IS scalar, so the entries still record (ratios ~1) and the name
  // says why.
  const simd::Path saved_path = simd::ActivePath();
  const simd::Path vec_path = simd::BestSupportedPath();
  const std::string tag = simd::PathName(vec_path);
  const auto timed_pair = [&](auto&& body) {
    simd::SetActivePath(simd::Path::kScalar);
    const double scalar = time_ms(body);
    simd::SetActivePath(vec_path);
    const double vec = time_ms(body);
    return std::pair<double, double>{scalar, vec};
  };

  Rng rng(11);
  std::vector<std::array<float, kMlpInputDim>> mlp_in(1024);
  for (auto& sample : mlp_in)
    for (auto& v : sample) v = rng.Uniform(-1.f, 1.f);
  std::vector<Vec3f> mlp_out(mlp_in.size());
  const auto [mlp32_s, mlp32_v] =
      timed_pair([&] { d.mlp.ForwardBatch(mlp_in, mlp_out); });
  const auto [mlp16_s, mlp16_v] =
      timed_pair([&] { d.mlp.ForwardFp16Batch(mlp_in, mlp_out); });

  const GridFieldSource dense_src(d.dataset->full_grid);
  const auto [tri_s, tri_v] =
      timed_pair([&] { dense_src.SampleBatch(points, out, nullptr); });

  src.SetBatchDedup(true);
  const auto [blend_s, blend_v] =
      timed_pair([&] { src.SampleBatch(points, out, nullptr); });
  SpNeRFFieldSource tiu_src(d.codec, /*fp16_tiu=*/true, false);
  const auto [tiu_s, tiu_v] =
      timed_pair([&] { tiu_src.SampleBatch(points, out, nullptr); });
  simd::SetActivePath(saved_path);

  std::printf("\nper-kernel SIMD (%s) vs scalar:\n"
              "  mlp fp32 batch     %8.2f -> %8.2f ms (%.2fx)\n"
              "  mlp fp16 batch     %8.2f -> %8.2f ms (%.2fx)\n"
              "  grid trilinear     %8.2f -> %8.2f ms (%.2fx)\n"
              "  spnerf blend       %8.2f -> %8.2f ms (%.2fx)\n"
              "  spnerf blend fp16  %8.2f -> %8.2f ms (%.2fx)\n",
              tag.c_str(), mlp32_s, mlp32_v, mlp32_s / mlp32_v, mlp16_s,
              mlp16_v, mlp16_s / mlp16_v, tri_s, tri_v, tri_s / tri_v,
              blend_s, blend_v, blend_s / blend_v, tiu_s, tiu_v,
              tiu_s / tiu_v);

  json.Add("mlp/forward-batch-fp32[scalar]", mlp32_s, 1);
  json.Add("mlp/forward-batch-fp32[" + tag + "]", mlp32_v, 1);
  json.Add("ratio/forward-batch-" + tag + "-vs-scalar", mlp32_s / mlp32_v, 1);
  json.Add("mlp/forward-batch-fp16[scalar]", mlp16_s, 1);
  json.Add("mlp/forward-batch-fp16[" + tag + "]", mlp16_v, 1);
  json.Add("ratio/forward-batch-fp16-" + tag + "-vs-scalar",
           mlp16_s / mlp16_v, 1);
  json.Add("trilinear/grid-batch[scalar]", tri_s, 1);
  json.Add("trilinear/grid-batch[" + tag + "]", tri_v, 1);
  json.Add("ratio/grid-trilinear-" + tag + "-vs-scalar", tri_s / tri_v, 1);
  json.Add("blend/spnerf-batch[scalar]", blend_s, 1);
  json.Add("blend/spnerf-batch[" + tag + "]", blend_v, 1);
  json.Add("ratio/spnerf-blend-" + tag + "-vs-scalar", blend_s / blend_v, 1);
  json.Add("blend/spnerf-batch-fp16[scalar]", tiu_s, 1);
  json.Add("blend/spnerf-batch-fp16[" + tag + "]", tiu_v, 1);
  json.Add("ratio/spnerf-blend-fp16-" + tag + "-vs-scalar", tiu_s / tiu_v, 1);
}

}  // namespace
}  // namespace spnerf

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  spnerf::WriteBatchedDecodeJson();
  return 0;
}
