// Microbenchmarks for the lock-free dispatch layer: the bounded queues and
// object pool in isolation (common/mpmc_queue.hpp, common/spsc_queue.hpp,
// common/object_pool.hpp) and the ThreadPool scheduling paths under each
// SPNF_DISPATCH mode. These are the per-operation costs the serving-layer
// numbers in bench_serving decompose into; the machine-readable entries go
// to BENCH_dispatch.json:
//   dispatch/mpmc-uncontended   N push+pop pairs, one thread
//   dispatch/mpmc-contended     N items through 2 producers + 2 consumers
//   dispatch/spsc-pipe          N items through a 2-thread pipe
//   dispatch/pool-churn         N acquire/release cycles, one thread
//   dispatch/pool-contended     N cycles split across 4 threads
//   dispatch/region-<mode>      N blocking fork-joins (RunOnWorkers)
//   dispatch/submit-<mode>      N detached single-slot regions (Submit)
//   ratio/region-locked-vs-lockfree   locked / lockfree fork-join wall
//
// Overrides: ops=N (queue/pool op count), regions=N (fork-join count),
//            threads=N (pool workers; 0 = hardware concurrency)
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/dispatch.hpp"
#include "common/mpmc_queue.hpp"
#include "common/object_pool.hpp"
#include "common/spsc_queue.hpp"

namespace {

using namespace spnerf;

void PrintRow(const char* name, double wall_ms, std::size_t ops) {
  std::printf("%-28s %9.2f ms | %8.1f ns/op\n", name, wall_ms,
              ops ? wall_ms * 1e6 / static_cast<double>(ops) : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const Config args = Config::FromArgs(argc, argv);
  const auto ops = static_cast<std::size_t>(args.GetInt("ops", 400000));
  const auto regions = static_cast<std::size_t>(args.GetInt("regions", 4000));
  const auto threads = static_cast<unsigned>(args.GetInt("threads", 0));

  bench::PrintHeader("dispatch",
                     "lock-free queue/pool/scheduler micro-costs");
  bench::JsonReport json("dispatch");
  std::size_t checksum = 0;  // defeats dead-code elimination

  {
    MpmcQueue<std::size_t> q(1024);
    bench::WallTimer t;
    for (std::size_t i = 0; i < ops; ++i) {
      q.TryPush(i);
      std::size_t v = 0;
      q.TryPop(v);
      checksum += v;
    }
    const double ms = t.ElapsedMs();
    PrintRow("mpmc uncontended", ms, ops);
    json.Add("dispatch/mpmc-uncontended", ms, 1);
  }

  {
    constexpr std::size_t kSides = 2;
    MpmcQueue<std::size_t> q(256);
    std::atomic<std::size_t> popped{0};
    bench::WallTimer t;
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < kSides; ++c) {
      workers.emplace_back([&] {
        std::size_t v = 0;
        while (popped.load(std::memory_order_relaxed) < ops) {
          if (q.TryPop(v)) {
            popped.fetch_add(1, std::memory_order_relaxed);
          } else {
            std::this_thread::yield();
          }
        }
      });
    }
    for (std::size_t p = 0; p < kSides; ++p) {
      workers.emplace_back([&, p] {
        for (std::size_t i = p; i < ops; i += kSides) {
          while (!q.TryPush(i)) std::this_thread::yield();
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const double ms = t.ElapsedMs();
    PrintRow("mpmc 2p/2c contended", ms, ops);
    json.Add("dispatch/mpmc-contended", ms, kSides * 2);
  }

  {
    SpscQueue<std::size_t> q(256);
    std::atomic<std::size_t> sink{0};
    bench::WallTimer t;
    std::thread consumer([&] {
      std::size_t got = 0, v = 0, local = 0;
      while (got < ops) {
        if (q.TryPop(v)) {
          local += v;
          ++got;
        } else {
          std::this_thread::yield();
        }
      }
      sink.store(local, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < ops; ++i) {
      while (!q.TryPush(i)) std::this_thread::yield();
    }
    consumer.join();
    checksum += sink.load(std::memory_order_relaxed);
    const double ms = t.ElapsedMs();
    PrintRow("spsc pipe", ms, ops);
    json.Add("dispatch/spsc-pipe", ms, 2);
  }

  {
    ObjectPool<std::vector<std::size_t>> pool(16);
    bench::WallTimer t;
    for (std::size_t i = 0; i < ops; ++i) {
      std::vector<std::size_t>* v = pool.Acquire();
      checksum += v->capacity();
      pool.Release(v);
    }
    const double ms = t.ElapsedMs();
    PrintRow("pool churn", ms, ops);
    json.Add("dispatch/pool-churn", ms, 1);
  }

  {
    constexpr unsigned kChurners = 4;
    ObjectPool<std::vector<std::size_t>> pool(16);
    bench::WallTimer t;
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < kChurners; ++w) {
      workers.emplace_back([&] {
        for (std::size_t i = 0; i < ops / kChurners; ++i) {
          std::vector<std::size_t>* v = pool.Acquire();
          pool.Release(v);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const double ms = t.ElapsedMs();
    PrintRow("pool churn x4", ms, ops / kChurners * kChurners);
    json.Add("dispatch/pool-contended", ms, kChurners);
  }

  bench::PrintRule();

  // Scheduler paths per dispatch mode: the blocking fork-join (the
  // ParallelFor spine under every render) and the detached submit (the
  // RenderService batch-issue path). Fresh pool per mode — the mode is
  // captured at construction.
  double region_ms[2] = {0.0, 0.0};
  const dispatch::Mode modes[2] = {dispatch::Mode::kLocked,
                                   dispatch::Mode::kLockFree};
  for (int m = 0; m < 2; ++m) {
    const dispatch::Mode prev = dispatch::SetActiveMode(modes[m]);
    const char* mode_name = dispatch::ModeName(modes[m]);
    ThreadPool pool(threads);
    const unsigned slots = pool.WorkerCount();
    std::atomic<std::size_t> body_runs{0};

    {
      bench::WallTimer t;
      for (std::size_t r = 0; r < regions; ++r) {
        pool.RunOnWorkers(slots, [&](unsigned) {
          body_runs.fetch_add(1, std::memory_order_relaxed);
        });
      }
      region_ms[m] = t.ElapsedMs();
      char row[64];
      std::snprintf(row, sizeof(row), "fork-join [%s]", mode_name);
      PrintRow(row, region_ms[m], regions);
      json.Add(std::string("dispatch/region-") + mode_name, region_ms[m],
               slots);
    }

    {
      std::atomic<std::size_t> completions{0};
      bench::WallTimer t;
      for (std::size_t r = 0; r < regions; ++r) {
        pool.Submit(
            1, [&](unsigned) {},
            [&] { completions.fetch_add(1, std::memory_order_release); });
      }
      while (completions.load(std::memory_order_acquire) < regions) {
        std::this_thread::yield();
      }
      const double ms = t.ElapsedMs();
      char row[64];
      std::snprintf(row, sizeof(row), "detached submit [%s]", mode_name);
      PrintRow(row, ms, regions);
      json.Add(std::string("dispatch/submit-") + mode_name, ms, slots);
    }
    checksum += body_runs.load(std::memory_order_relaxed);
    dispatch::SetActiveMode(prev);
  }
  if (region_ms[1] > 0.0) {
    const double ratio = region_ms[0] / region_ms[1];
    std::printf("fork-join speedup: locked %.2f ms -> lockfree %.2f ms "
                "(%.2fx)\n", region_ms[0], region_ms[1], ratio);
    // Ratio value rides in the wall_ms field (repo convention for ratio/
    // entries); > 1 means the lock-free path wins.
    json.Add("ratio/region-locked-vs-lockfree", ratio,
             threads ? threads : ThreadPool::Global().WorkerCount());
  }

  bench::PrintRule();
  std::printf("checksum %zu\n", checksum);
  bench::AddBuildTimings(json);
  return 0;
}
