// Model cross-validation: the event-driven dataflow simulation
// (PipelineSim, token-level with backpressure) against the steady-state
// composition (AcceleratorSim) on real per-scene workloads — the repo's
// analogue of the paper's "cycle-level simulator verified against our RTL
// design".
#include "bench/bench_util.hpp"
#include "core/pipeline.hpp"
#include "sim/accelerator.hpp"
#include "sim/pipeline_sim.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  bench::PrintHeader("Validation", "dataflow sim vs steady-state model");
  bench::JsonReport json("pipeline_validation");
  std::printf("%-12s %14s %14s %8s | %10s %10s %12s\n", "scene",
              "dataflow cyc", "analytic cyc", "ratio", "SGPU busy",
              "MLP busy", "DMA hidden@");
  bench::PrintRule();

  double worst = 1.0;
  for (SceneId id : cfg.scenes) {
    const bench::WallTimer scene_timer;
    const std::shared_ptr<const ScenePipeline> p =
        PipelineRepository::Global().Acquire(cfg.MakePipelineConfig(id));
    const FrameWorkload w =
        p->MeasureWorkload(cfg.tile_size, cfg.frame_width, cfg.frame_height);
    json.Add(std::string("validate/") + SceneName(id),
             scene_timer.ElapsedMs(), bench::EffectiveThreads(cfg));
    const PipelineSimResult fine = PipelineSim().Run(w);
    const SimResult coarse = AcceleratorSim(cfg.accel).SimulateFrame(w);
    const double ratio = static_cast<double>(fine.frame_cycles) /
                         static_cast<double>(coarse.frame_cycles);
    worst = std::max(worst, std::max(ratio, 1.0 / ratio));
    std::printf("%-12s %14llu %14llu %8.3f | %9.1f%% %9.1f%% %11.1f%%\n",
                SceneName(id),
                static_cast<unsigned long long>(fine.frame_cycles),
                static_cast<unsigned long long>(coarse.frame_cycles), ratio,
                fine.sgpu.BusyFraction(fine.frame_cycles) * 100.0,
                fine.mlp.BusyFraction(fine.frame_cycles) * 100.0,
                100.0 * static_cast<double>(fine.last_table_ready) /
                    static_cast<double>(fine.frame_cycles));
  }
  bench::PrintRule();
  std::printf("worst-case disagreement: %.1f%% — the fully-pipelined "
              "steady-state composition is faithful\n",
              (worst - 1.0) * 100.0);
  bench::AddBuildTimings(json);
  return 0;
}
