// Section II-B: why COO/CSR/CSC are a poor fit for irregular voxel access.
// Quantifies the paper's two arguments: (1) COO coordinate storage costs an
// extra ~630 KB per scene on average; (2) per-lookup probe counts are high
// and irregular vs the hash table's single probe.
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "encoding/sparse_formats.hpp"
#include "encoding/spnerf_codec.hpp"
#include "scene/dataset.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  bench::PrintHeader("Sec II-B", "sparse-encoding baselines vs hash mapping");
  bench::JsonReport json("encoding_formats");
  std::printf("%-12s %10s | %10s %10s %10s %10s | %7s %7s %7s\n", "scene",
              "nonzero", "COO coord", "COO", "CSR", "CSC", "COOprb", "CSRprb",
              "CSCprb");
  bench::PrintRule();

  std::vector<double> coord_overheads;
  for (SceneId id : cfg.scenes) {
    DatasetParams dp;
    dp.resolution_override = cfg.resolution_override;
    dp.vqrf = cfg.vqrf;
    dp.max_threads = cfg.threads;
    const std::shared_ptr<const SceneDataset> ds =
        AssetCache::Global().AcquireDataset(id, dp);
    const CooGrid coo = CooGrid::Build(*ds->vqrf);
    const CsrGrid csr = CsrGrid::Build(*ds->vqrf);
    const CscGrid csc = CscGrid::Build(*ds->vqrf);

    // Random (ray-sampling-like) lookups: average probes per query.
    Rng rng(99);
    const GridDims& dims = ds->vqrf->Dims();
    double coo_probes = 0, csr_probes = 0, csc_probes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      const Vec3i p{rng.UniformInt(0, dims.nx - 1),
                    rng.UniformInt(0, dims.ny - 1),
                    rng.UniformInt(0, dims.nz - 1)};
      coo_probes += coo.Lookup(p).probes;
      csr_probes += csr.Lookup(p).probes;
      csc_probes += csc.Lookup(p).probes;
    }
    std::printf("%-12s %10llu | %10s %10s %10s %10s | %7.1f %7.1f %7.1f\n",
                SceneName(id),
                static_cast<unsigned long long>(ds->vqrf->NonZeroCount()),
                FormatBytes(coo.CoordinateBytes()).c_str(),
                FormatBytes(coo.TotalBytes()).c_str(),
                FormatBytes(csr.TotalBytes()).c_str(),
                FormatBytes(csc.TotalBytes()).c_str(), coo_probes / n,
                csr_probes / n, csc_probes / n);
    coord_overheads.push_back(static_cast<double>(coo.CoordinateBytes()));
  }
  bench::PrintRule();
  std::printf("avg COO coordinate overhead: %s per scene  (paper: ~630 KB)\n",
              FormatBytes(static_cast<u64>(MeanOf(coord_overheads))).c_str());
  std::printf("SpNeRF hash mapping: 1 table probe + 1 payload fetch per "
              "lookup, no stored coordinates\n");
  bench::AddBuildTimings(json);
  return 0;
}
