// Fig 6(b): PSNR of VQRF, SpNeRF before bitmap masking, and SpNeRF after
// bitmap masking. Paper result: masked SpNeRF is comparable to VQRF, while
// the unmasked decode collapses (hash collisions corrupt empty space).
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  bench::PrintHeader("Fig 6(b)", "PSNR: VQRF vs SpNeRF pre/post bitmap masking");
  std::printf("%-12s %10s %12s %12s %12s %10s %10s %10s\n", "scene", "VQRF",
              "SpNeRF-pre", "SpNeRF-post", "post-VQRF", "VQ SSIM", "Sp SSIM",
              "alias");
  bench::PrintRule();
  bench::JsonReport json("fig6b_psnr");
  const bench::WallTimer timer;
  std::vector<double> vq, pre, post;
  for (const PsnrRow& r : RunPsnr(cfg)) {
    std::printf("%-12s %9.2f %12.2f %12.2f %+11.2f %10.4f %10.4f %9.2f%%\n",
                r.scene.c_str(), r.vqrf_psnr, r.spnerf_premask_psnr,
                r.spnerf_postmask_psnr,
                r.spnerf_postmask_psnr - r.vqrf_psnr, r.vqrf_ssim,
                r.spnerf_postmask_ssim, r.nonzero_alias_rate * 100.0);
    vq.push_back(r.vqrf_psnr);
    pre.push_back(r.spnerf_premask_psnr);
    post.push_back(r.spnerf_postmask_psnr);
  }
  bench::PrintRule();
  std::printf("means: VQRF %.2f dB, pre-mask %.2f dB, post-mask %.2f dB\n",
              MeanOf(vq), MeanOf(pre), MeanOf(post));
  std::printf("shape check: post-mask within %.2f dB of VQRF; masking gains "
              "%.1f dB (paper: comparable / large gap)\n",
              MeanOf(vq) - MeanOf(post), MeanOf(post) - MeanOf(pre));
  json.Add("psnr", timer.ElapsedMs(), bench::EffectiveThreads(cfg));
  bench::AddBuildTimings(json);
  return 0;
}
