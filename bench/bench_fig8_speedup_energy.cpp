// Fig 8: normalized speedup (a) and energy efficiency (b) of the SpNeRF
// accelerator vs Jetson XNX and ONX running the VQRF flow.
// Paper result: speedups 52.4x..157.1x (XNX, avg 95.1x) and
// 34.9x..112.2x (ONX, avg 63.5x); energy-efficiency gains
// 346.4x..1030.9x (XNX, avg 625.6x) and 288.7x..937.2x (ONX, avg 529.1x).
#include <algorithm>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  const ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  bench::PrintHeader("Fig 8", "speedup & energy efficiency vs edge GPUs");
  bench::JsonReport json("fig8_speedup_energy");
  const bench::WallTimer timer;
  const auto rows = RunHardwareComparison(cfg);
  json.Add("hardware_comparison", timer.ElapsedMs(),
           bench::EffectiveThreads(cfg));

  std::printf("(a) normalized speedup\n");
  std::printf("%-12s %12s %10s %10s %12s %12s\n", "scene", "SpNeRF fps",
              "XNX fps", "ONX fps", "vs XNX", "vs ONX");
  bench::PrintRule();
  std::vector<double> sx, so, ex, eo, fps;
  for (const HardwareRow& r : rows) {
    std::printf("%-12s %12.2f %10.3f %10.3f %11.1fx %11.1fx\n",
                r.scene.c_str(), r.sim.fps, r.xnx.fps, r.onx.fps,
                r.speedup_vs_xnx, r.speedup_vs_onx);
    sx.push_back(r.speedup_vs_xnx);
    so.push_back(r.speedup_vs_onx);
    ex.push_back(r.energy_eff_gain_vs_xnx);
    eo.push_back(r.energy_eff_gain_vs_onx);
    fps.push_back(r.sim.fps);
  }
  bench::PrintRule();
  std::printf("avg speedup: XNX %.1fx [%.1f..%.1f]  (paper 95.1x [52.4..157.1])\n",
              MeanOf(sx), *std::min_element(sx.begin(), sx.end()),
              *std::max_element(sx.begin(), sx.end()));
  std::printf("             ONX %.1fx [%.1f..%.1f]  (paper 63.5x [34.9..112.2])\n",
              MeanOf(so), *std::min_element(so.begin(), so.end()),
              *std::max_element(so.begin(), so.end()));

  std::printf("\n(b) normalized energy efficiency\n");
  std::printf("%-12s %14s %14s\n", "scene", "vs XNX", "vs ONX");
  bench::PrintRule();
  for (const HardwareRow& r : rows) {
    std::printf("%-12s %13.1fx %13.1fx\n", r.scene.c_str(),
                r.energy_eff_gain_vs_xnx, r.energy_eff_gain_vs_onx);
  }
  bench::PrintRule();
  std::printf("avg energy-eff gain: XNX %.1fx (paper 625.6x), ONX %.1fx "
              "(paper 529.1x)\n",
              MeanOf(ex), MeanOf(eo));
  std::printf("mean SpNeRF frame rate: %.2f fps (paper Table II: 67.56)\n",
              MeanOf(fps));
  bench::AddBuildTimings(json);
  return 0;
}
