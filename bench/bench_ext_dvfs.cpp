// Extension study: DVFS projection of the SpNeRF design point. The paper
// fixes 1 GHz; this sweep shows how frame rate, power and energy efficiency
// trade as the clock (and supply) move — e.g. whether a 0.8 GHz corner
// still clears real-time while saving power.
#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "sim/accelerator.hpp"

int main(int argc, char** argv) {
  using namespace spnerf;
  ExperimentConfig cfg = bench::MakeConfig(argc, argv);
  const Config c = Config::FromArgs(argc, argv);
  if (!c.Has("scenes")) cfg.scenes = {SceneId::kLego};

  bench::PrintHeader("Extension", "DVFS sweep around the 1 GHz design point");
  bench::JsonReport json("ext_dvfs");
  const std::shared_ptr<const ScenePipeline> p =
      PipelineRepository::Global().Acquire(
          cfg.MakePipelineConfig(cfg.scenes.front()));
  const FrameWorkload w =
      p->MeasureWorkload(cfg.tile_size, cfg.frame_width, cfg.frame_height);
  const SimResult nominal = AcceleratorSim(cfg.accel).SimulateFrame(w);

  std::printf("scene '%s', nominal: %.2f fps @ %s\n\n",
              SceneName(cfg.scenes.front()), nominal.fps,
              FormatWatts(nominal.power.total_w).c_str());
  std::printf("%-10s %10s %12s %12s %12s\n", "clock", "fps", "power",
              "FPS/W", "30fps?");
  bench::PrintRule();
  for (double r : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.4}) {
    const DvfsPoint pt = ScaleWithDvfs(nominal.power, nominal.fps, r);
    std::printf("%8.2fG %10.2f %12s %12.2f %12s\n", r, pt.fps,
                FormatWatts(pt.power.total_w).c_str(), pt.FpsPerWatt(),
                pt.fps >= 30.0 ? "yes" : "no");
  }
  bench::PrintRule();
  std::printf("energy efficiency peaks at low voltage; the paper's 1 GHz "
              "point buys headroom above real-time on every scene\n");
  bench::AddBuildTimings(json);
  return 0;
}
