// DRAM model characterization: achieved bandwidth and row-buffer behaviour
// across access patterns and burst sizes. Quantifies the memory-system
// facts the SpNeRF design exploits: contiguous per-subgrid table streams run
// near peak, while the irregular per-sample gathers of the restore-based
// flow collapse to ~1/10 of peak — the paper's memory-bound diagnosis.
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "dram/lpddr.hpp"

namespace {

struct SweepResult {
  double gbps = 0.0;
  double hit_rate = 0.0;
  double energy_pj_per_byte = 0.0;
};

SweepResult RunPattern(const spnerf::DramConfig& cfg, spnerf::u32 burst,
                       bool random) {
  using namespace spnerf;
  LpddrModel dram(cfg);
  const u64 total = 8ull * 1024 * 1024;
  Rng rng(1);
  for (u64 moved = 0; moved < total; moved += burst) {
    const u64 addr = random ? (rng.NextBelow(1ull << 30) / burst) * burst
                            : moved;
    (void)dram.Access(addr, burst, false, 0);
  }
  SweepResult r;
  r.gbps = static_cast<double>(total) /
           static_cast<double>(dram.DrainCycle());
  r.hit_rate = dram.Stats().RowHitRate();
  r.energy_pj_per_byte =
      dram.Stats().DynamicEnergyJ() * 1e12 / static_cast<double>(total);
  return r;
}

}  // namespace

int main() {
  using namespace spnerf;
  bench::PrintHeader("DRAM", "LPDDR model characterization");
  for (const DramConfig& cfg : {Lpddr4_3200(), Lpddr4_1600(), Lpddr5_102()}) {
    std::printf("\n%s (peak %.1f GB/s)\n", cfg.name.c_str(),
                cfg.peak_bandwidth_gbps);
    std::printf("%-12s %8s | %10s %9s %10s | %10s %9s %10s\n", "pattern",
                "burst", "GB/s", "row hit", "pJ/B", "GB/s", "row hit",
                "pJ/B");
    std::printf("%-12s %8s | %31s | %31s\n", "", "", "sequential",
                "random");
    bench::PrintRule();
    for (u32 burst : {32u, 64u, 256u, 1024u}) {
      const SweepResult seq = RunPattern(cfg, burst, false);
      const SweepResult rnd = RunPattern(cfg, burst, true);
      std::printf("%-12s %7uB | %10.1f %8.1f%% %10.2f | %10.1f %8.1f%% %10.2f\n",
                  "stream/gather", burst, seq.gbps, seq.hit_rate * 100.0,
                  seq.energy_pj_per_byte, rnd.gbps, rnd.hit_rate * 100.0,
                  rnd.energy_pj_per_byte);
    }
  }
  bench::PrintRule();
  std::printf("design consequence: SpNeRF streams its %s-granularity tables "
              "sequentially (near-peak),\nwhile VQRF-restore gathers 32-64B "
              "vertices randomly (~10%% of peak on LPDDR4).\n",
              "256B");
  return 0;
}
