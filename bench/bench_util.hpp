// Shared helpers for the paper-reproduction bench binaries. Each bench is a
// standalone executable that prints the rows/series of one table or figure.
// All benches accept `key=value` overrides, e.g.:
//   ./bench_fig6b_psnr scenes=2 res=96 img=64     # quick smoke run
#pragma once

#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "common/units.hpp"
#include "core/experiments.hpp"

namespace spnerf::bench {

/// Builds the default paper-scale experiment configuration, with optional
/// command-line overrides:
///   scenes=N   use only the first N zoo scenes (default all 8)
///   res=R      override the voxel-grid resolution (default: paper scale)
///   img=S      PSNR raster size (default 100)
///   tile=S     workload-measurement tile (default 96)
inline ExperimentConfig MakeConfig(int argc, const char* const* argv) {
  const Config c = Config::FromArgs(argc, argv);
  ExperimentConfig cfg;
  const int nscenes = c.GetInt("scenes", static_cast<int>(cfg.scenes.size()));
  if (nscenes > 0 && nscenes < static_cast<int>(cfg.scenes.size())) {
    cfg.scenes.resize(static_cast<std::size_t>(nscenes));
  }
  cfg.resolution_override = c.GetInt("res", 0);
  cfg.psnr_image_size = c.GetInt("img", 100);
  cfg.tile_size = c.GetInt("tile", 96);
  return cfg;
}

inline void PrintHeader(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------\n");
}

}  // namespace spnerf::bench
