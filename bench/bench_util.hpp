// Shared helpers for the paper-reproduction bench binaries. Each bench is a
// standalone executable that prints the rows/series of one table or figure.
// All benches accept `key=value` overrides, e.g.:
//   ./bench_fig6b_psnr scenes=2 res=96 img=64     # quick smoke run
//
// Next to the human-readable tables every bench writes its timing entries
// to a machine-readable BENCH_<id>.json (one file per run, overwritten) so
// wall-time trajectories can be collected per commit.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <algorithm>

#include "common/config.hpp"
#include "common/image.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "common/ssim.hpp"
#include "common/units.hpp"
#include "core/experiments.hpp"
#include "core/pipeline_repository.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spnerf::bench {

/// Compile-target architecture tag for the bench host metadata.
inline const char* HostArchName() {
#if defined(__x86_64__)
  return "x86_64";
#elif defined(__aarch64__)
  return "aarch64";
#elif defined(__i386__)
  return "x86";
#else
  return "unknown";
#endif
}

/// Builds the default paper-scale experiment configuration, with optional
/// command-line overrides:
///   scenes=N   use only the first N zoo scenes (default all 8)
///   res=R      override the voxel-grid resolution (default: paper scale)
///   img=S      PSNR raster size (default 100)
///   tile=S     workload-measurement tile (default 96)
///   threads=N  render worker cap (default 0 = every pool worker)
inline ExperimentConfig MakeConfig(int argc, const char* const* argv) {
  const Config c = Config::FromArgs(argc, argv);
  ExperimentConfig cfg;
  const int nscenes = c.GetInt("scenes", static_cast<int>(cfg.scenes.size()));
  if (nscenes > 0 && nscenes < static_cast<int>(cfg.scenes.size())) {
    cfg.scenes.resize(static_cast<std::size_t>(nscenes));
  }
  cfg.resolution_override = c.GetInt("res", 0);
  cfg.psnr_image_size = c.GetInt("img", 100);
  cfg.tile_size = c.GetInt("tile", 96);
  cfg.threads = static_cast<unsigned>(c.GetInt("threads", 0));
  return cfg;
}

/// Render parallelism a config resolves to (the JSON `threads` field).
/// Matches RenderEngine semantics: an explicit cap is honoured even past
/// the global pool size (dedicated-pool oversubscription).
inline unsigned EffectiveThreads(const ExperimentConfig& cfg) {
  return cfg.threads ? cfg.threads : ThreadPool::Global().WorkerCount();
}

inline void PrintHeader(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------\n");
}

/// Wall-clock stopwatch for bench phases.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable timing report, written (overwriting any previous run)
/// as BENCH_<id>.json on destruction. Four entry shapes share the file:
/// wall-time phases {name, wall_ms, threads}, serving percentiles
/// {name, p50_ms, p95_ms, p99_ms, throughput_rps, threads}, serving
/// outcome counts {name, completed, rejected, expired, threads} and image
/// quality {name, psnr_db, ssim, wall_ms, threads}, so latency
/// distributions, shed counts and degraded-render quality land in the same
/// per-commit trajectory as batch timings.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_id) : bench_id_(std::move(bench_id)) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void Add(const std::string& name, double wall_ms, unsigned threads) {
    Entry e;
    e.name = name;
    e.wall_ms = wall_ms;
    e.threads = threads;
    entries_.push_back(std::move(e));
  }

  /// Tail-latency entry for a serving phase.
  void AddPercentiles(const std::string& name, double p50_ms, double p95_ms,
                      double p99_ms, double throughput_rps, unsigned threads) {
    Entry e;
    e.name = name;
    e.threads = threads;
    e.kind = Entry::kPercentiles;
    e.p50_ms = p50_ms;
    e.p95_ms = p95_ms;
    e.p99_ms = p99_ms;
    e.throughput_rps = throughput_rps;
    entries_.push_back(std::move(e));
  }

  /// Overhead ratio entry for the observability gate (e.g.
  /// "serve/trace-overhead[full]" = rps_full / rps_off). Written into the
  /// `obs` block so trajectory tooling can assert the tracing contract
  /// (>= 0.95 full, >= 0.99 counters-only) per commit.
  void AddObsRatio(const std::string& name, double ratio) {
    obs_ratios_.push_back({name, ratio});
  }

  /// Captures the process metrics registry into the report's `obs` block
  /// (call once, after the measured phases). Every BENCH_*.json then embeds
  /// the run's counter/gauge/histogram snapshot next to its timings.
  void CaptureObsSnapshot() {
    obs_snapshot_ = obs::MetricsRegistry::Global().Snapshot();
    have_obs_snapshot_ = true;
  }

  /// Request-outcome counts for a serving phase (or one priority class of
  /// it): completed vs explicitly shed. Tracking sheds per commit makes a
  /// shedding regression — or a priority inversion starving one class —
  /// visible in the trajectory, not just in aggregate latency.
  void AddCounts(const std::string& name, unsigned long long completed,
                 unsigned long long rejected, unsigned long long expired,
                 unsigned threads) {
    Entry e;
    e.name = name;
    e.threads = threads;
    e.kind = Entry::kCounts;
    e.completed = completed;
    e.rejected = rejected;
    e.expired = expired;
    entries_.push_back(std::move(e));
  }

  /// Quality-vs-cost entry for a degraded render (e.g. "quality/rung2"):
  /// PSNR/SSIM against the full-quality reference next to the measured
  /// per-frame wall time, so the PSNR-vs-deadline tradeoff curve lands in
  /// the per-commit trajectory.
  void AddQuality(const std::string& name, double psnr_db, double ssim,
                  double wall_ms, unsigned threads) {
    Entry e;
    e.name = name;
    e.threads = threads;
    e.kind = Entry::kQuality;
    e.psnr_db = psnr_db;
    e.ssim = ssim;
    e.wall_ms = wall_ms;
    entries_.push_back(std::move(e));
  }

  ~JsonReport() {
    const std::string path = "BENCH_" + bench_id_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return;
    // Host metadata: numbers from different machines / dispatch paths must
    // never be compared as one trajectory, so every report says where it
    // came from. `simd_detected` is what auto-detection would pick on this
    // host; `simd_path` is what the wavefront kernels actually dispatched
    // on when the report was written (tests/benches may have forced it).
    std::fprintf(f,
                 "{\n  \"bench\": \"%s\",\n"
                 "  \"host\": {\"arch\": \"%s\", \"simd_detected\": \"%s\", "
                 "\"simd_path\": \"%s\", \"compiler\": \"%s\"},\n"
                 "  \"entries\": [\n",
                 bench_id_.c_str(), HostArchName(),
                 simd::PathName(simd::BestSupportedPath()),
                 simd::PathName(simd::ActivePath()), simd::CompilerName());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      const char* sep = i + 1 < entries_.size() ? "," : "";
      if (e.kind == Entry::kPercentiles) {
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"p50_ms\": %.3f, "
                     "\"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                     "\"throughput_rps\": %.2f, \"threads\": %u}%s\n",
                     e.name.c_str(), e.p50_ms, e.p95_ms, e.p99_ms,
                     e.throughput_rps, e.threads, sep);
      } else if (e.kind == Entry::kQuality) {
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"psnr_db\": %.3f, "
                     "\"ssim\": %.4f, \"wall_ms\": %.3f, "
                     "\"threads\": %u}%s\n",
                     e.name.c_str(), e.psnr_db, e.ssim, e.wall_ms, e.threads,
                     sep);
      } else if (e.kind == Entry::kCounts) {
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"completed\": %llu, "
                     "\"rejected\": %llu, \"expired\": %llu, "
                     "\"threads\": %u}%s\n",
                     e.name.c_str(), e.completed, e.rejected, e.expired,
                     e.threads, sep);
      } else {
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"wall_ms\": %.3f, "
                     "\"threads\": %u}%s\n",
                     e.name.c_str(), e.wall_ms, e.threads, sep);
      }
    }
    std::fprintf(f, "  ],\n");
    // The observability block: the run's trace level, any recorded
    // tracing-overhead ratios, and (when captured) the full metrics
    // snapshot. Metric names are repo-chosen identifiers (no escaping
    // needed).
    std::fprintf(f, "  \"obs\": {\n    \"trace_level\": \"%s\"",
                 obs::TraceLevelName(obs::ActiveTraceLevel()));
    if (!obs_ratios_.empty()) {
      std::fprintf(f, ",\n    \"ratios\": [\n");
      for (std::size_t i = 0; i < obs_ratios_.size(); ++i) {
        std::fprintf(f, "      {\"name\": \"%s\", \"ratio\": %.4f}%s\n",
                     obs_ratios_[i].first.c_str(), obs_ratios_[i].second,
                     i + 1 < obs_ratios_.size() ? "," : "");
      }
      std::fprintf(f, "    ]");
    }
    if (have_obs_snapshot_) {
      std::fprintf(f, ",\n    \"counters\": [\n");
      for (std::size_t i = 0; i < obs_snapshot_.counters.size(); ++i) {
        const auto& c = obs_snapshot_.counters[i];
        std::fprintf(f, "      {\"name\": \"%s\", \"value\": %llu}%s\n",
                     c.name.c_str(), static_cast<unsigned long long>(c.value),
                     i + 1 < obs_snapshot_.counters.size() ? "," : "");
      }
      std::fprintf(f, "    ],\n    \"gauges\": [\n");
      for (std::size_t i = 0; i < obs_snapshot_.gauges.size(); ++i) {
        const auto& g = obs_snapshot_.gauges[i];
        std::fprintf(f, "      {\"name\": \"%s\", \"value\": %lld}%s\n",
                     g.name.c_str(), static_cast<long long>(g.value),
                     i + 1 < obs_snapshot_.gauges.size() ? "," : "");
      }
      std::fprintf(f, "    ],\n    \"histograms\": [\n");
      for (std::size_t i = 0; i < obs_snapshot_.histograms.size(); ++i) {
        const auto& h = obs_snapshot_.histograms[i];
        std::fprintf(
            f,
            "      {\"name\": \"%s\", \"count\": %llu, \"sum\": %llu, "
            "\"p50\": %llu, \"p99\": %llu, \"max\": %llu}%s\n",
            h.name.c_str(), static_cast<unsigned long long>(h.hist.count),
            static_cast<unsigned long long>(h.hist.sum),
            static_cast<unsigned long long>(h.hist.Percentile(50.0)),
            static_cast<unsigned long long>(h.hist.Percentile(99.0)),
            static_cast<unsigned long long>(h.hist.max),
            i + 1 < obs_snapshot_.histograms.size() ? "," : "");
      }
      std::fprintf(f, "    ]");
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("[json] wrote %s (%zu entries)\n", path.c_str(),
                entries_.size());
  }

 private:
  struct Entry {
    enum Kind { kWallTime, kPercentiles, kCounts, kQuality };
    std::string name;
    double wall_ms = 0.0;
    unsigned threads = 0;
    Kind kind = kWallTime;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double throughput_rps = 0.0;
    double psnr_db = 0.0;
    double ssim = 0.0;
    unsigned long long completed = 0;
    unsigned long long rejected = 0;
    unsigned long long expired = 0;
  };
  std::string bench_id_;
  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, double>> obs_ratios_;
  obs::MetricsSnapshot obs_snapshot_;
  bool have_obs_snapshot_ = false;
};

/// Reference-vs-candidate image quality pair for degraded-rendering
/// entries. PSNR is capped at 99 dB so bit-identical pairs (infinite PSNR)
/// stay finite in the JSON trajectory.
struct ImageQuality {
  double psnr_db = 0.0;
  double ssim = 0.0;
};

inline ImageQuality MeasureQuality(const Image& reference,
                                   const Image& candidate) {
  ImageQuality q;
  q.psnr_db = std::min(Psnr(reference, candidate), 99.0);
  q.ssim = Ssim(reference, candidate);
  return q;
}

/// Drains the build/preprocess phase timings accumulated by the pipeline
/// repository (cold builds, disk loads, memory hits) into the JSON report,
/// one `{name, wall_ms, threads}` entry per acquired asset — e.g.
/// "build/dataset/lego[cold]" — so the build-path trajectory is tracked
/// alongside the render phases. Also prints a one-line cache summary.
inline void AddBuildTimings(JsonReport& json) {
  u64 cold = 0, disk = 0, mem = 0;
  for (const AssetTimingEntry& e :
       PipelineRepository::Global().DrainTimings()) {
    json.Add("build/" + e.name + "[" + AssetOriginName(e.origin) + "]",
             e.wall_ms, e.threads);
    switch (e.origin) {
      case AssetOrigin::kBuilt: ++cold; break;
      case AssetOrigin::kDisk: ++disk; break;
      case AssetOrigin::kMemory: ++mem; break;
    }
  }
  if (cold + disk + mem) {
    std::printf("[assets] %llu cold build(s), %llu disk load(s), "
                "%llu memory hit(s)\n",
                static_cast<unsigned long long>(cold),
                static_cast<unsigned long long>(disk),
                static_cast<unsigned long long>(mem));
  }
}

}  // namespace spnerf::bench
