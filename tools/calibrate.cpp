#include <cstdio>
#include <algorithm>
#include "common/config.hpp"
#include "core/experiments.hpp"
#include "core/pipeline_repository.hpp"
#include "common/units.hpp"
using namespace spnerf;

int main(int argc, char** argv) {
  Config c = Config::FromArgs(argc, argv);
  ExperimentConfig cfg;
  cfg.resolution_override = c.GetInt("res", 0);
  cfg.psnr_image_size = c.GetInt("img", 100);
  cfg.threads = static_cast<unsigned>(c.GetInt("threads", 0));
  int nscenes = c.GetInt("scenes", 8);
  cfg.scenes.resize(nscenes);
  const std::string what = c.GetString("what", "all");

  if (what == "all" || what == "sparsity") {
    for (auto& r : RunSparsity(cfg))
      std::printf("sparsity %-10s total=%llu nz=%llu frac=%.4f%%\n", r.scene.c_str(),
        (unsigned long long)r.total_voxels, (unsigned long long)r.nonzero_voxels, r.nonzero_fraction*100);
  }
  if (what == "all" || what == "memory") {
    for (auto& r : RunMemory(cfg))
      std::printf("memory %-10s vqrf=%s spnerf=%s (hash=%s bitmap=%s cb=%s true=%s) red=%.2fx\n",
        r.scene.c_str(), FormatBytes(r.vqrf_restored_bytes).c_str(), FormatBytes(r.spnerf_bytes).c_str(),
        FormatBytes(r.hash_table_bytes).c_str(), FormatBytes(r.bitmap_bytes).c_str(),
        FormatBytes(r.codebook_bytes).c_str(), FormatBytes(r.true_grid_bytes).c_str(), r.reduction);
  }
  if (what == "all" || what == "psnr") {
    for (auto& r : RunPsnr(cfg))
      std::printf("psnr %-10s vqrf=%.2f pre=%.2f post=%.2f coll=%.4f alias=%.5f\n",
        r.scene.c_str(), r.vqrf_psnr, r.spnerf_premask_psnr, r.spnerf_postmask_psnr,
        r.build_collision_rate, r.nonzero_alias_rate);
  }
  if (what == "all" || what == "hw") {
    auto rows = RunHardwareComparison(cfg);
    std::vector<double> sx, so, ex, eo, fps;
    for (auto& r : rows) {
      std::printf("hw %-10s smp=%.1fM ev=%.2fM ", r.scene.c_str(), r.sim.activity.samples/1e6, r.sim.activity.interpolated_samples/1e6);
      std::printf("spnerf=%.2ffps(%s util=%.2f) xnx=%.3f onx=%.3f | sp_x=%.1f sp_o=%.1f ee_x=%.1f ee_o=%.1f | P=%.2fW (sys=%.2f sram=%.2f sgpu=%.3f dram=%.2f leak=%.2f oth=%.2f)\n",
        r.sim.fps, r.sim.bottleneck.c_str(), r.sim.systolic_utilization,
        r.xnx.fps, r.onx.fps, r.speedup_vs_xnx, r.speedup_vs_onx,
        r.energy_eff_gain_vs_xnx, r.energy_eff_gain_vs_onx,
        r.sim.power.total_w, r.sim.power.systolic_w, r.sim.power.sram_w, r.sim.power.sgpu_logic_w,
        r.sim.power.dram_w, r.sim.power.leakage_w, r.sim.power.other_w);
      sx.push_back(r.speedup_vs_xnx); so.push_back(r.speedup_vs_onx);
      ex.push_back(r.energy_eff_gain_vs_xnx); eo.push_back(r.energy_eff_gain_vs_onx);
      fps.push_back(r.sim.fps);
    }
    auto rep = MakeDesignReport(cfg, rows);
    std::printf("AVG fps=%.2f speedup_xnx=%.1f [%.1f..%.1f] onx=%.1f | ee_xnx=%.1f ee_onx=%.1f\n",
      MeanOf(fps), MeanOf(sx), *std::min_element(sx.begin(),sx.end()), *std::max_element(sx.begin(),sx.end()),
      MeanOf(so), MeanOf(ex), MeanOf(eo));
    std::printf("AREA total=%.2fmm2 (systolic=%.2f sgpu=%.2f sram=%.2f phy=%.2f misc=%.2f)\n",
      rep.area.total_mm2, rep.area.systolic_mm2, rep.area.sgpu_logic_mm2, rep.area.sram_mm2,
      rep.area.dram_phy_mm2, rep.area.controller_misc_mm2);
    std::printf("TABLE2 spnerf: sram=%.2fMB area=%.2f power=%.2fW fps=%.2f ee=%.2f ae=%.2f\n",
      rep.spnerf_row.sram_mb, rep.spnerf_row.area_mm2, rep.spnerf_row.power_w, rep.spnerf_row.fps,
      rep.spnerf_row.energy_eff_fps_per_w, rep.spnerf_row.area_eff_fps_per_mm2);
  }
  if (what == "sweep") {
    for (auto& pt : RunSubgridSweep(cfg, {4,8,16,32,64,128,256}, 16*1024))
      std::printf("fig7a K=%-4d T=16k psnr=%.2f alias=%.4f bytes=%.1fMB\n", pt.subgrid_count, pt.mean_psnr, pt.alias_rate, pt.spnerf_bytes/1048576.0);
    for (auto& pt : RunTableSweep(cfg, 64, {2048,4096,8192,16384,32768,65536,131072}))
      std::printf("fig7b K=64 T=%-7u psnr=%.2f alias=%.4f bytes=%.1fMB\n", pt.table_size, pt.mean_psnr, pt.alias_rate, pt.spnerf_bytes/1048576.0);
  }
  if (what == "all" || what == "fig2a") {
    for (auto& r : RunRuntimeBreakdown(cfg))
      std::printf("fig2a %-6s mem=%.3f comp=%.3f over=%.3f fps=%.3f\n",
        r.platform.c_str(), r.memory_share, r.compute_share, r.overhead_share, r.fps);
  }
  const AssetCache::Stats st = PipelineRepository::Global().CacheStats();
  std::printf("asset cache: %llu cold build(s), %llu disk load(s), %llu memory hit(s)\n",
    (unsigned long long)st.builds, (unsigned long long)st.disk_hits,
    (unsigned long long)st.memory_hits);
  return 0;
}
